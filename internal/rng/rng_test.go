package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("wifi")
	b := parent.Split("lte")
	if a.Uint64() == b.Uint64() {
		t.Error("differently-labelled children produced identical output")
	}
	// Splitting again with the same label from an unconsumed parent
	// reproduces the same child stream.
	c1, c2 := New(7).Split("wifi"), New(7).Split("wifi")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-label children diverged at %d", i)
		}
	}
}

func TestSplitNotPerturbedByParentConsumption(t *testing.T) {
	// Children split up front must be reproducible regardless of what
	// siblings consume.
	p1 := New(9)
	c1 := p1.Split("x")
	p2 := New(9)
	c2 := p2.Split("x")
	c2Sibling := p2.Split("y")
	for i := 0; i < 1000; i++ {
		c2Sibling.Uint64() // sibling consumption must not matter
	}
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("sibling consumption perturbed child at %d", i)
		}
	}
}

func TestSplitIndexStreams(t *testing.T) {
	parent := New(11)
	// Same (label, index) → same stream.
	a, b := parent.SplitIndex("start", 5), parent.SplitIndex("start", 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-index streams diverged at %d", i)
		}
	}
	// Distinct indices of one family must be pairwise distinct, and
	// distinct from the plain label split.
	seen := map[uint64]int{parent.Split("start").Uint64(): -1}
	for i := 0; i < 64; i++ {
		v := parent.SplitIndex("start", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on first draw", i, j)
		}
		seen[v] = i
	}
	// Different families with the same index must differ too.
	if parent.SplitIndex("start", 3).Uint64() == parent.SplitIndex("perturb", 3).Uint64() {
		t.Error("families start/perturb collide at index 3")
	}
}

func TestSplitIndexDoesNotMutateParent(t *testing.T) {
	p1, p2 := New(13), New(13)
	for i := 0; i < 32; i++ {
		p1.SplitIndex("x", i) // deriving children must not consume
	}
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatalf("SplitIndex consumed parent state (diverged at %d)", i)
		}
	}
}

// TestSplitConcurrentDerivation locks down the sharing contract the
// parallel fan-out relies on: many goroutines deriving children from
// one parent concurrently get exactly the streams sequential derivation
// yields (and -race must stay silent).
func TestSplitConcurrentDerivation(t *testing.T) {
	parent := New(17)
	const n = 64
	want := make([]uint64, n)
	for i := range want {
		want[i] = parent.SplitIndex("task", i).Uint64()
	}
	got := make([]uint64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			got[i] = parent.SplitIndex("task", i).Uint64()
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concurrent derivation differs at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/7-800 || c > n/7+800 {
			t.Errorf("Intn bucket %d count %d deviates from %d", v, c, n/7)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
