// Package rng provides a small, fast, splittable pseudo-random number
// generator used throughout the simulator.
//
// Experiments need reproducibility (a seed fully determines a run) and
// independence between subsystems (the WiFi MAC must not perturb the LTE
// fading draw stream when one of them consumes an extra variate). Both
// needs are served by a splittable generator: every subsystem derives its
// own child stream from a parent via Split, keyed by a label, so streams
// are stable under code changes elsewhere.
//
// The core generator is xoshiro256**, seeded through SplitMix64 as its
// authors recommend. It is not cryptographically secure and must never be
// used for security purposes.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic, splittable random source. The zero value is
// not usable; construct with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources built from the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// xoshiro must not start at the all-zero state.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns (next state, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child stream labelled by label. The child
// depends only on the parent's seed path and the label, not on how many
// variates the parent has consumed, so sibling subsystems cannot perturb
// each other. Splitting the same parent twice with the same label yields
// the same child only if the parent state is identical, so callers should
// split all children up front from a fresh parent.
//
// Split never mutates the parent, so one parent may be shared by many
// goroutines as long as each only derives children from it (each with a
// distinct label or index) and consumes from its own child.
func (r *Source) Split(label string) *Source {
	return r.child(labelHash(label))
}

// SplitIndex derives the i-th stream of the labelled family: an
// independent child keyed by (label, i). It is the per-start /
// per-chain / per-trial stream-offset derivation used by the parallel
// fan-out sites — task i always receives the same stream for a given
// seed path, no matter which worker runs it or in what order, which is
// what makes parallel execution byte-identical to sequential. Like
// Split it never mutates the parent.
func (r *Source) SplitIndex(label string, i int) *Source {
	h := labelHash(label)
	// Offset the family hash by the stream index with a full SplitMix64
	// avalanche so adjacent indices land on unrelated states.
	h ^= 0x9E3779B97F4A7C15 * (uint64(i) + 1)
	_, h = splitMix64(h)
	return r.child(h)
}

// labelHash is FNV-64 over the label bytes.
func labelHash(label string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h
}

// child builds the derived Source for a label/index hash: the hash is
// mixed with the parent state without consuming from it, then run
// through SplitMix64 for avalanche.
func (r *Source) child(h uint64) *Source {
	var child Source
	sm := h ^ r.s[0] ^ rotl(r.s[2], 13)
	for i := range child.s {
		sm, child.s[i] = splitMix64(sm)
	}
	if child.s == [4]uint64{} {
		child.s[0] = h | 1
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
