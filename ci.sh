#!/bin/sh
# ci.sh — the repo's full verification gate.
#
#   vet + build + tests, then the whole suite again under the race
#   detector. The concurrency layer (internal/parallel, parallel
#   multi-start inference, MCMC chains, experiment fan-out) is only
#   trusted when both passes are clean: the plain pass proves the
#   parallel paths are byte-identical to sequential (determinism
#   tests), the -race pass proves they are actually safe.
#
# The race pass is slow on the full experiment sweeps; use
#   ./ci.sh -short
# to run both passes with -short (skips the long sweeps but keeps
# every determinism, pool, and fuzz-seed test).
set -eu

cd "$(dirname "$0")"

short="${1:-}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test $short ./...

echo "== go test -race =="
go test -race $short ./...

echo "== obs smoke =="
# A reduced-scale testbed experiment must emit a manifest that parses,
# validates, survives a JSON round-trip, and carries nonzero scheduler
# grant/CCA-block/collision counters — proving the obs layer is wired
# through the controller, schedulers, and CLI end to end.
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/blusim -scale 0.05 -metrics "$obsdir/manifest.json" fig10 >/dev/null
go run ./cmd/blumanifest \
  -require sched_blu_grants_total,sched_blu_blocked_total,sched_blu_collision_total,sched_pf_grants_total,core_measurement_phases_total,core_speculative_phases_total \
  "$obsdir/manifest.json"

echo "== kernel smoke =="
# The scheduler and inference hot paths must stay allocation-free in
# steady state and byte-identical across cache bounds and parallelism:
# re-run the AllocsPerRun ceilings and the golden trace tests for both
# kernels — cold inference and the warm-started §3.7 refresh repair —
# plus the binary-codec ceilings, then a short blubench
# scheduler+codec+warm-start run whose BENCH JSON must pass
# blumanifest's schema check (parse, invariants, round-trip) with all
# scheduler, codec, warm-start, and observe entries and nonzero
# cache-hit counters present.
go test $short -run 'TestScheduleSteadyStateAllocs|TestScheduleTraceGolden|TestScheduleTraceCacheBoundInvariance' ./internal/sched/
go test $short -run 'TestInferAllocCeiling|TestInferTraceGolden|TestDeltaSpecializationsExact|TestWarmStart' ./internal/blueprint/
go test $short -run 'TestCodecAllocCeiling|TestBinaryCodec' ./internal/serve/
go run ./cmd/blubench -sched -o "$obsdir/bench_sched.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Schedule/PF,Schedule/AA,Schedule/BLU,Codec/JSON,Codec/Binary,Infer/WarmStartCold,Infer/WarmStart,Serve/Observe \
  -require sched_blu_cache_hit_total,sched_joint_cache_hit_total,sched_blu_scratch_reuse_total \
  "$obsdir/bench_sched.json"

echo "== chaos smoke =="
# The fault-injection chaos suite under the race detector (short mode:
# the sweeps above already ran), then a reduced chaos experiment over
# the loss and stall scenarios whose manifest must prove the fault
# injector and the degradation ladder actually fired: observations
# dropped, inference iterations stalled, the confidence gate tripped,
# and retries were spent.
go test -race -short -run 'Chaos|Stall|Ladder|Faulted|Quarantine|Ctx|InferContext|RunContext' \
  ./internal/faults/ ./internal/core/ ./internal/access/ ./internal/blueprint/ ./internal/mcmc/
go run ./cmd/blusim -scale 0.05 -metrics "$obsdir/chaos.json" -faults loss,stall chaos >/dev/null
go run ./cmd/blumanifest \
  -require faults_observations_dropped_total,faults_stall_iterations_total,core_gate_trips_total,core_infer_retries_total,core_fallback_phases_total \
  "$obsdir/chaos.json"

echo "== persist smoke =="
# The durability layer's crash-safety gates: the recovery suite under
# the race detector (torn writes, truncation, bit flips, rotate-vs-
# append races), the kill-and-restore equivalence test, and the seed
# corpora of the persist decoders plus the window export/import
# fuzzer — decoders that eat arbitrary disk bytes must prove they
# never panic before anything below trusts a restart.
go test -race -run 'TestRecovery|TestKillRestore|TestRestore|TestSnapshot|TestCrash|TestRotate|TestAbort' \
  ./internal/persist/ ./internal/serve/
go test -run 'FuzzDecodeSnapshot|FuzzScanSegment' ./internal/persist/
go test -run 'FuzzWindowExportImport' ./internal/access/

echo "== serve smoke =="
# The serving layer end to end, race-instrumented: start blud on a
# loopback port, drive a seeded closed-loop bluload run against it, and
# require (a) the load report passes blumanifest's BENCH schema check
# with all three endpoint entries, (b) the embedded server snapshot
# proves the result cache actually absorbed repeats (nonzero
# serve_cache_hit_total), and (c) a SIGTERM drain flushes a manifest
# that validates with the same counters.
blud_pid=""
# kill runs unquoted and || true'd: at normal exit the pid vars are
# empty, and a bare/empty kill is an error that would abort the trap
# (set -e) before rm — leaving the temp dir behind and, worse, turning
# a fully clean run into a nonzero exit.
trap 'kill $blud_pid 2>/dev/null || true; rm -rf "$obsdir"' EXIT
go build -race -o "$obsdir/blud" ./cmd/blud
go build -race -o "$obsdir/bluload" ./cmd/bluload
"$obsdir/blud" -addr 127.0.0.1:0 -manifest "$obsdir/blud_manifest.json" \
  >"$obsdir/blud.out" 2>"$obsdir/blud.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
if [ -z "$addr" ]; then
  echo "ci: blud never reported its address" >&2
  cat "$obsdir/blud.out" "$obsdir/blud.err" >&2
  exit 1
fi
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 200 -o "$obsdir/bench_serve.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer,Serve/joint,Serve/schedule \
  -require serve_requests_total,serve_cache_hit_total \
  "$obsdir/bench_serve.json"
# A second, binary-codec run against the same daemon: the infer stream
# switches to the length-prefixed frames (request and response), which
# must negotiate cleanly under race instrumentation and show up in the
# daemon's serve_binary_total counter.
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 120 -codec binary -o "$obsdir/bench_serve_bin.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer \
  -require serve_requests_total,serve_binary_total \
  "$obsdir/bench_serve_bin.json"
# A third run drives the streaming refresh loop: observe batches fold
# into session windows while session-keyed infers solve from the live
# estimate, so the digest-delta invalidation path must fire for real —
# nonzero serve_observe_total and serve_invalidation_total prove
# batches folded AND moved digests under cached results.
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 200 -mix observe -o "$obsdir/bench_serve_obs.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer,Serve/observe \
  -require serve_requests_total,serve_observe_total,serve_invalidation_total \
  "$obsdir/bench_serve_obs.json"
kill -TERM "$blud_pid"
wait "$blud_pid"
blud_pid=""
go run ./cmd/blumanifest \
  -require serve_requests_total,serve_cache_hit_total,serve_infer_total,serve_joint_total,serve_schedule_total,serve_observe_total,serve_invalidation_total \
  "$obsdir/blud_manifest.json"

echo "== restart smoke =="
# Durable restart end to end, race-instrumented: a blud with -state
# takes an observe-mix bluload run, mints a session-keyed infer into
# its cache, and is then killed with SIGKILL — no drain, no final
# snapshot. The relaunched daemon must (a) report recovered state
# (nonzero persist_recovered_total in its drain manifest), and
# (b) answer the same session infer as a byte-identical cache hit,
# proving the snapshot+WAL image restored the streaming state and the
# minted response bytes exactly.
go build -race -o "$obsdir/bluprobe" ./cmd/bluprobe
statedir="$obsdir/state"
"$obsdir/blud" -addr 127.0.0.1:0 -state "$statedir" \
  -snapshot-interval 1s -wal-sync 5ms \
  >"$obsdir/blud2.out" 2>"$obsdir/blud2.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud2.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "ci: durable blud never reported its address" >&2; cat "$obsdir/blud2.err" >&2; exit 1; }
"$obsdir/bluload" -addr "$addr" -seed 11 -c 4 -n 200 -mix observe >/dev/null
printf '{"session":"load-a","options":{"seed":424242}}' >"$obsdir/probe.json"
# Repeated session infers converge on a warm-start fixed point (cold
# mint, then warm-keyed mints until the key repeats); the final probe
# must be a cache hit and its bytes are what the restart must
# reproduce.
for _ in 1 2 3 4; do
  "$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" >/dev/null
done
"$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" \
  -require-cache hit -save-body "$obsdir/prekill.bin" >/dev/null
# Let at least two snapshot ticks land so the minted cache entry is in
# the on-disk image, then kill without ceremony.
sleep 2.5
kill -9 "$blud_pid"
wait "$blud_pid" 2>/dev/null || true
blud_pid=""
"$obsdir/blud" -addr 127.0.0.1:0 -state "$statedir" \
  -snapshot-interval 1s -wal-sync 5ms -manifest "$obsdir/blud2_manifest.json" \
  >"$obsdir/blud3.out" 2>"$obsdir/blud3.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud3.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "ci: restarted blud never reported its address" >&2; cat "$obsdir/blud3.err" >&2; exit 1; }
grep -q '^blud: recovered' "$obsdir/blud3.err" || {
  echo "ci: restarted blud did not log its recovery" >&2; cat "$obsdir/blud3.err" >&2; exit 1; }
"$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" \
  -require-cache hit -require-body-file "$obsdir/prekill.bin"
kill -TERM "$blud_pid"
wait "$blud_pid"
blud_pid=""
go run ./cmd/blumanifest \
  -require persist_recovered_total,persist_snapshots_total \
  "$obsdir/blud2_manifest.json"

echo "== state migration smoke =="
# Cross-version state round-trip on the directory the restart smoke
# left behind: blustate downgrades every artifact to the v1 on-disk
# format, and a relaunched (v2) daemon must open the v1 directory in
# place — logging a nonzero migrated count, carrying nonzero
# persist_migrated_total into its drain manifest, and answering the
# same session infer as a byte-identical cache hit, proving the
# v2 → v1 → v2 rewrite chain loses nothing.
go build -race -o "$obsdir/blustate" ./cmd/blustate
"$obsdir/blustate" "$statedir" | grep -q 'snapshot v2' || {
  echo "ci: restart smoke state dir is not v2" >&2
  "$obsdir/blustate" "$statedir" >&2; exit 1; }
"$obsdir/blustate" -to v1 "$statedir" >/dev/null
"$obsdir/blustate" "$statedir" | grep -q 'snapshot v1' || {
  echo "ci: blustate -to v1 left a non-v1 snapshot" >&2
  "$obsdir/blustate" "$statedir" >&2; exit 1; }
"$obsdir/blud" -addr 127.0.0.1:0 -state "$statedir" \
  -snapshot-interval 1s -wal-sync 5ms -manifest "$obsdir/blud4_manifest.json" \
  >"$obsdir/blud4.out" 2>"$obsdir/blud4.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud4.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "ci: migrated blud never reported its address" >&2; cat "$obsdir/blud4.err" >&2; exit 1; }
grep -Eq ' [1-9][0-9]* v1 artifacts migrated' "$obsdir/blud4.err" || {
  echo "ci: migrated blud did not log a nonzero v1 artifact count" >&2
  cat "$obsdir/blud4.err" >&2; exit 1; }
"$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" \
  -require-cache hit -require-body-file "$obsdir/prekill.bin"
kill -TERM "$blud_pid"
wait "$blud_pid"
blud_pid=""
go run ./cmd/blumanifest \
  -require persist_migrated_total,persist_recovered_total \
  "$obsdir/blud4_manifest.json"

echo "== fleet smoke =="
# The multi-cell shard fleet end to end, race-instrumented and truly
# multi-process: three blufleet shards on fixed loopback ports (peer
# URLs pre-wired for cross-shard blueprint exchange) behind one router
# process. A bluload -cells run drives the per-cell observe/infer mix
# through the router's proxy path, and after a warm-up pause for
# exchange rounds a second run's report must carry Fleet/* entries plus
# nonzero routing, exchange, and border-dedup counters (the router's
# /metrics aggregates the shard snapshots, so the exchange counters
# cross process boundaries to get there). Then the crash drill: one
# shard dies by real kill -9 and is relaunched on the same port and
# state dir — it must log its recovery, answer its cell's session with
# a byte-identical digest, and the surviving shards' cached responses
# must still answer byte-identically through the router.
go build -race -o "$obsdir/blufleet" ./cmd/blufleet
fleetstate="$obsdir/fleetstate"
fs0=127.0.0.1:18460; fs1=127.0.0.1:18461; fs2=127.0.0.1:18462
fleet_pids=""
trap 'kill $fleet_pids $blud_pid 2>/dev/null || true; rm -rf "$obsdir"' EXIT
start_fleet_shard() { # name addr peers... ; echoes the pid
  _name="$1"; _addr="$2"; shift 2
  "$obsdir/blufleet" -mode shard -name "$_name" -cells 3 -seed 1 -shards 3 \
    -addr "$_addr" -state "$fleetstate/$_name" -exchange 300ms \
    -snapshot-interval 1s -wal-sync 5ms "$@" \
    >"$obsdir/fleet_$_name.out" 2>"$obsdir/fleet_$_name.err" &
  echo $!
}
s0_pid="$(start_fleet_shard shard-0 "$fs0" -peer shard-1="http://$fs1" -peer shard-2="http://$fs2")"
s1_pid="$(start_fleet_shard shard-1 "$fs1" -peer shard-0="http://$fs0" -peer shard-2="http://$fs2")"
s2_pid="$(start_fleet_shard shard-2 "$fs2" -peer shard-0="http://$fs0" -peer shard-1="http://$fs1")"
fleet_pids="$s0_pid $s1_pid $s2_pid"
"$obsdir/blufleet" -mode router -cells 3 -seed 1 -shards 3 -addr 127.0.0.1:0 \
  -shard shard-0="http://$fs0" -shard shard-1="http://$fs1" -shard shard-2="http://$fs2" \
  >"$obsdir/fleet_router.out" 2>"$obsdir/fleet_router.err" &
router_pid=$!
fleet_pids="$fleet_pids $router_pid"
faddr=""
for _ in $(seq 1 50); do
  faddr="$(sed -n 's/^blufleet: router listening on //p' "$obsdir/fleet_router.out")"
  if [ -n "$faddr" ] && \
     grep -q 'listening on' "$obsdir/fleet_shard-0.out" 2>/dev/null && \
     grep -q 'listening on' "$obsdir/fleet_shard-1.out" 2>/dev/null && \
     grep -q 'listening on' "$obsdir/fleet_shard-2.out" 2>/dev/null; then
    break
  fi
  faddr=""
  sleep 0.2
done
if [ -z "$faddr" ]; then
  echo "ci: fleet never came up" >&2
  cat "$obsdir"/fleet_*.err >&2
  exit 1
fi
"$obsdir/bluload" -addr "$faddr" -cells 3 -seed 1 -c 4 -n 300 -mix observe >/dev/null
# Let several exchange intervals elapse over the freshly inferred
# blueprints so border reports are published and re-received (dedup).
sleep 1.2
"$obsdir/bluload" -addr "$faddr" -cells 3 -seed 1 -c 4 -n 150 -mix observe \
  -o "$obsdir/bench_fleet.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Fleet/infer,Fleet/observe,Fleet/joint,Fleet/schedule \
  -require fleet_routed_total,fleet_exchange_rounds_total,fleet_exchange_published_total,fleet_border_dedup_total \
  "$obsdir/bench_fleet.json"
# The merged global interference map must answer through the router.
"$obsdir/bluprobe" -addr "$faddr" -path /v1/fleet/map >/dev/null
# Crash drill. With (-cells 3, -seed 1) the ring assigns cell-0 to
# shard-1 and cell-2 to shard-2: shard-2 is the victim, and a probe
# session on cell-0 (outside the cell:* namespace, so exchange seeding
# never moves its warm start) pins the survivors' cache bytes.
printf '{"session":"probe:cell-0","n":4,"observations":[{"scheduled":[0,1,2,3],"accessed":[0,1,3]}],"seal":true}' \
  >"$obsdir/fleet_obs.json"
"$obsdir/bluprobe" -addr "$faddr" -path "/v1/observe?cell=cell-0" -body "$obsdir/fleet_obs.json" >/dev/null
printf '{"session":"probe:cell-0","options":{"seed":77}}' >"$obsdir/fleet_probe.json"
for _ in 1 2 3 4; do
  "$obsdir/bluprobe" -addr "$faddr" -path "/v1/infer?cell=cell-0" -body "$obsdir/fleet_probe.json" >/dev/null
done
"$obsdir/bluprobe" -addr "$faddr" -path "/v1/infer?cell=cell-0" -body "$obsdir/fleet_probe.json" \
  -require-cache hit -save-body "$obsdir/fleet_prekill.bin" >/dev/null
# Pin the victim's cell digest (an empty observe batch folds nothing
# and echoes the canonical digest — cell-2 has 7 members).
printf '{"session":"cell:cell-2","n":7}' >"$obsdir/fleet_cell2.json"
"$obsdir/bluprobe" -addr "$faddr" -path "/v1/observe?cell=cell-2" -body "$obsdir/fleet_cell2.json" \
  -save-body "$obsdir/fleet_cell2_pre.bin" >/dev/null
# Let a snapshot tick land, then kill the victim without ceremony.
sleep 1.5
kill -9 "$s2_pid"
wait "$s2_pid" 2>/dev/null || true
# Fresh log files: the first boot also logs a (zero) recovery line, and
# the liveness poll must not match stale output.
rm -f "$obsdir/fleet_shard-2.out" "$obsdir/fleet_shard-2.err"
s2_pid="$(start_fleet_shard shard-2 "$fs2" -peer shard-0="http://$fs0" -peer shard-1="http://$fs1")"
fleet_pids="$s0_pid $s1_pid $s2_pid $router_pid"
for _ in $(seq 1 50); do
  grep -q 'listening on' "$obsdir/fleet_shard-2.out" 2>/dev/null && break
  sleep 0.2
done
grep -q '^blufleet: shard shard-2 recovered' "$obsdir/fleet_shard-2.err" || {
  echo "ci: restarted fleet shard did not log its recovery" >&2
  cat "$obsdir/fleet_shard-2.err" >&2
  exit 1
}
# The victim answers its cell digest-identically; the survivors' cached
# probe response is still a byte-identical hit.
"$obsdir/bluprobe" -addr "$faddr" -path "/v1/observe?cell=cell-2" -body "$obsdir/fleet_cell2.json" \
  -require-body-file "$obsdir/fleet_cell2_pre.bin" >/dev/null
"$obsdir/bluprobe" -addr "$faddr" -path "/v1/infer?cell=cell-0" -body "$obsdir/fleet_probe.json" \
  -require-cache hit -require-body-file "$obsdir/fleet_prekill.bin"
kill -TERM $fleet_pids
for pid in $fleet_pids; do
  wait "$pid" 2>/dev/null || true
done
fleet_pids=""

echo "== reshard smoke =="
# Dynamic resharding end to end, race-instrumented and multi-process
# (DESIGN.md §17): a 3-shard fleet over 8 cells takes continuous
# bluload traffic while a 4th shard process joins via the admin
# endpoint. With (-cells 8, -seed 42) the ring moves exactly
# {cell-2, cell-5, cell-7} to shard-3 — 3 of 8 cells, the minimal-
# motion bound — and the run must prove (a) bluload rides the 307
# reshard fences to a zero-failure exit, (b) the router's aggregated
# /metrics reports fleet_reshard_moved_cells == 3 and nonzero handoff
# traffic, (c) a moved cell's session answers byte-identically as a
# cache hit from its new shard, and (d) an unmoved cell co-resident
# with moved ones on the losing shard keeps its byte-identical cached
# hit — the handoff must not disturb state that did not move.
reshardstate="$obsdir/reshardstate"
rs0=127.0.0.1:18470; rs1=127.0.0.1:18471; rs2=127.0.0.1:18472; rs3=127.0.0.1:18473
load_pid=""
trap 'kill $fleet_pids $blud_pid $load_pid 2>/dev/null || true; rm -rf "$obsdir"' EXIT
start_reshard_shard() { # name addr shards peers... ; echoes the pid
  _name="$1"; _addr="$2"; _shards="$3"; shift 3
  "$obsdir/blufleet" -mode shard -name "$_name" -cells 8 -seed 42 -shards "$_shards" \
    -addr "$_addr" -state "$reshardstate/$_name" -exchange 300ms \
    -snapshot-interval 1s -wal-sync 5ms "$@" \
    >"$obsdir/reshard_$_name.out" 2>"$obsdir/reshard_$_name.err" &
  echo $!
}
r0_pid="$(start_reshard_shard shard-0 "$rs0" 3 -peer shard-1="http://$rs1" -peer shard-2="http://$rs2")"
r1_pid="$(start_reshard_shard shard-1 "$rs1" 3 -peer shard-0="http://$rs0" -peer shard-2="http://$rs2")"
r2_pid="$(start_reshard_shard shard-2 "$rs2" 3 -peer shard-0="http://$rs0" -peer shard-1="http://$rs1")"
fleet_pids="$r0_pid $r1_pid $r2_pid"
"$obsdir/blufleet" -mode router -cells 8 -seed 42 -addr 127.0.0.1:0 \
  -shard shard-0="http://$rs0" -shard shard-1="http://$rs1" -shard shard-2="http://$rs2" \
  >"$obsdir/reshard_router.out" 2>"$obsdir/reshard_router.err" &
rrouter_pid=$!
fleet_pids="$fleet_pids $rrouter_pid"
raddr=""
for _ in $(seq 1 50); do
  raddr="$(sed -n 's/^blufleet: router listening on //p' "$obsdir/reshard_router.out")"
  if [ -n "$raddr" ] && \
     grep -q 'listening on' "$obsdir/reshard_shard-0.out" 2>/dev/null && \
     grep -q 'listening on' "$obsdir/reshard_shard-1.out" 2>/dev/null && \
     grep -q 'listening on' "$obsdir/reshard_shard-2.out" 2>/dev/null; then
    break
  fi
  raddr=""
  sleep 0.2
done
if [ -z "$raddr" ]; then
  echo "ci: reshard fleet never came up" >&2
  cat "$obsdir"/reshard_*.err >&2
  exit 1
fi
# Warm two probe sessions to cache hits through the router: cell-2
# will move to shard-3, cell-3 stays on shard-2 (which loses cell-2
# and cell-5). The bodies differ in client count — identical
# measurements would mint the same digest-keyed cache entry on the
# shared shard-2 cache, and releasing the moved session would then
# (correctly) drop the unmoved session's entry too, turning the hit
# assertion into a false alarm.
printf '{"session":"probe:cell-2","n":4,"observations":[{"scheduled":[0,1,2,3],"accessed":[0,1,3]}],"seal":true}' \
  >"$obsdir/reshard_obs2.json"
printf '{"session":"probe:cell-3","n":5,"observations":[{"scheduled":[0,1,2,3,4],"accessed":[0,2,4]}],"seal":true}' \
  >"$obsdir/reshard_obs3.json"
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/observe?cell=cell-2" -body "$obsdir/reshard_obs2.json" >/dev/null
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/observe?cell=cell-3" -body "$obsdir/reshard_obs3.json" >/dev/null
printf '{"session":"probe:cell-2","options":{"seed":77}}' >"$obsdir/reshard_probe2.json"
printf '{"session":"probe:cell-3","options":{"seed":78}}' >"$obsdir/reshard_probe3.json"
for _ in 1 2 3 4; do
  "$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-2" -body "$obsdir/reshard_probe2.json" >/dev/null
  "$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-3" -body "$obsdir/reshard_probe3.json" >/dev/null
done
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-2" -body "$obsdir/reshard_probe2.json" \
  -require-cache hit -save-body "$obsdir/reshard_pre2.bin" >/dev/null
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-3" -body "$obsdir/reshard_probe3.json" \
  -require-cache hit -save-body "$obsdir/reshard_pre3.bin" >/dev/null
# Pin the moved session's digest: an empty observe batch folds nothing
# and echoes the canonical digest, so its bytes must survive the move.
printf '{"session":"probe:cell-2","n":4}' >"$obsdir/reshard_dig2.json"
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/observe?cell=cell-2" -body "$obsdir/reshard_dig2.json" \
  -save-body "$obsdir/reshard_dig2_pre.bin" >/dev/null
# Continuous background load across the reshard; it must exit clean —
# 307 fence responses are retried, not failures.
"$obsdir/bluload" -addr "$raddr" -cells 8 -seed 42 -c 4 -duration 8s -mix observe \
  >"$obsdir/reshard_load.out" 2>"$obsdir/reshard_load.err" &
load_pid=$!
sleep 1
r3_pid="$(start_reshard_shard shard-3 "$rs3" 4 \
  -peer shard-0="http://$rs0" -peer shard-1="http://$rs1" -peer shard-2="http://$rs2")"
fleet_pids="$fleet_pids $r3_pid"
for _ in $(seq 1 50); do
  grep -q 'listening on' "$obsdir/reshard_shard-3.out" 2>/dev/null && break
  sleep 0.2
done
grep -q 'listening on' "$obsdir/reshard_shard-3.out" || {
  echo "ci: shard-3 never came up" >&2; cat "$obsdir/reshard_shard-3.err" >&2; exit 1; }
printf '{"action":"add","name":"shard-3","url":"http://%s"}' "$rs3" >"$obsdir/reshard_req.json"
"$obsdir/bluprobe" -addr "$raddr" -path /v1/fleet/reshard -body "$obsdir/reshard_req.json" \
  -save-body "$obsdir/reshard_resp.json" >/dev/null
for cell in cell-2 cell-5 cell-7; do
  grep -q "\"$cell\"" "$obsdir/reshard_resp.json" || {
    echo "ci: reshard response does not list moved $cell" >&2
    cat "$obsdir/reshard_resp.json" >&2; exit 1; }
done
wait "$load_pid" || {
  echo "ci: bluload failed across the reshard" >&2
  cat "$obsdir/reshard_load.out" "$obsdir/reshard_load.err" >&2; exit 1; }
load_pid=""
# The router's aggregated scrape must show exactly 3 moved cells (the
# minimal-motion bound for 1-of-4 ring shares over 8 cells) and the
# shards' handoff counters crossing process boundaries.
"$obsdir/bluprobe" -addr "$raddr" -path /metrics -save-body "$obsdir/reshard_metrics.json" >/dev/null
grep -q '"fleet_reshard_total":1' "$obsdir/reshard_metrics.json" || {
  echo "ci: aggregated metrics missing fleet_reshard_total=1" >&2
  cat "$obsdir/reshard_metrics.json" >&2; exit 1; }
grep -q '"fleet_reshard_moved_cells":3' "$obsdir/reshard_metrics.json" || {
  echo "ci: aggregated metrics missing fleet_reshard_moved_cells=3" >&2
  cat "$obsdir/reshard_metrics.json" >&2; exit 1; }
grep -Eq '"fleet_handoff_sessions_total":[1-9]' "$obsdir/reshard_metrics.json" || {
  echo "ci: aggregated metrics missing nonzero fleet_handoff_sessions_total" >&2
  cat "$obsdir/reshard_metrics.json" >&2; exit 1; }
# Moved cell: byte-identical digest and a byte-identical cache hit
# from shard-3; unmoved cell: the losing shard kept its cached bytes.
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/observe?cell=cell-2" -body "$obsdir/reshard_dig2.json" \
  -require-body-file "$obsdir/reshard_dig2_pre.bin" >/dev/null
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-2" -body "$obsdir/reshard_probe2.json" \
  -require-cache hit -require-body-file "$obsdir/reshard_pre2.bin"
"$obsdir/bluprobe" -addr "$raddr" -path "/v1/infer?cell=cell-3" -body "$obsdir/reshard_probe3.json" \
  -require-cache hit -require-body-file "$obsdir/reshard_pre3.bin"
kill -TERM $fleet_pids
for pid in $fleet_pids; do
  wait "$pid" 2>/dev/null || true
done
fleet_pids=""

echo "ci: all clean"
