#!/bin/sh
# ci.sh — the repo's full verification gate.
#
#   vet + build + tests, then the whole suite again under the race
#   detector. The concurrency layer (internal/parallel, parallel
#   multi-start inference, MCMC chains, experiment fan-out) is only
#   trusted when both passes are clean: the plain pass proves the
#   parallel paths are byte-identical to sequential (determinism
#   tests), the -race pass proves they are actually safe.
#
# The race pass is slow on the full experiment sweeps; use
#   ./ci.sh -short
# to run both passes with -short (skips the long sweeps but keeps
# every determinism, pool, and fuzz-seed test).
set -eu

cd "$(dirname "$0")"

short="${1:-}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test $short ./...

echo "== go test -race =="
go test -race $short ./...

echo "ci: all clean"
