#!/bin/sh
# ci.sh — the repo's full verification gate.
#
#   vet + build + tests, then the whole suite again under the race
#   detector. The concurrency layer (internal/parallel, parallel
#   multi-start inference, MCMC chains, experiment fan-out) is only
#   trusted when both passes are clean: the plain pass proves the
#   parallel paths are byte-identical to sequential (determinism
#   tests), the -race pass proves they are actually safe.
#
# The race pass is slow on the full experiment sweeps; use
#   ./ci.sh -short
# to run both passes with -short (skips the long sweeps but keeps
# every determinism, pool, and fuzz-seed test).
set -eu

cd "$(dirname "$0")"

short="${1:-}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test $short ./...

echo "== go test -race =="
go test -race $short ./...

echo "== obs smoke =="
# A reduced-scale testbed experiment must emit a manifest that parses,
# validates, survives a JSON round-trip, and carries nonzero scheduler
# grant/CCA-block/collision counters — proving the obs layer is wired
# through the controller, schedulers, and CLI end to end.
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/blusim -scale 0.05 -metrics "$obsdir/manifest.json" fig10 >/dev/null
go run ./cmd/blumanifest \
  -require sched_blu_grants_total,sched_blu_blocked_total,sched_blu_collision_total,sched_pf_grants_total,core_measurement_phases_total,core_speculative_phases_total \
  "$obsdir/manifest.json"

echo "== kernel smoke =="
# The scheduler and inference hot paths must stay allocation-free in
# steady state and byte-identical across cache bounds and parallelism:
# re-run the AllocsPerRun ceilings and the golden trace tests for both
# kernels — cold inference and the warm-started §3.7 refresh repair —
# plus the binary-codec ceilings, then a short blubench
# scheduler+codec+warm-start run whose BENCH JSON must pass
# blumanifest's schema check (parse, invariants, round-trip) with all
# scheduler, codec, warm-start, and observe entries and nonzero
# cache-hit counters present.
go test $short -run 'TestScheduleSteadyStateAllocs|TestScheduleTraceGolden|TestScheduleTraceCacheBoundInvariance' ./internal/sched/
go test $short -run 'TestInferAllocCeiling|TestInferTraceGolden|TestDeltaSpecializationsExact|TestWarmStart' ./internal/blueprint/
go test $short -run 'TestCodecAllocCeiling|TestBinaryCodec' ./internal/serve/
go run ./cmd/blubench -sched -o "$obsdir/bench_sched.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Schedule/PF,Schedule/AA,Schedule/BLU,Codec/JSON,Codec/Binary,Infer/WarmStartCold,Infer/WarmStart,Serve/Observe \
  -require sched_blu_cache_hit_total,sched_joint_cache_hit_total,sched_blu_scratch_reuse_total \
  "$obsdir/bench_sched.json"

echo "== chaos smoke =="
# The fault-injection chaos suite under the race detector (short mode:
# the sweeps above already ran), then a reduced chaos experiment over
# the loss and stall scenarios whose manifest must prove the fault
# injector and the degradation ladder actually fired: observations
# dropped, inference iterations stalled, the confidence gate tripped,
# and retries were spent.
go test -race -short -run 'Chaos|Stall|Ladder|Faulted|Quarantine|Ctx|InferContext|RunContext' \
  ./internal/faults/ ./internal/core/ ./internal/access/ ./internal/blueprint/ ./internal/mcmc/
go run ./cmd/blusim -scale 0.05 -metrics "$obsdir/chaos.json" -faults loss,stall chaos >/dev/null
go run ./cmd/blumanifest \
  -require faults_observations_dropped_total,faults_stall_iterations_total,core_gate_trips_total,core_infer_retries_total,core_fallback_phases_total \
  "$obsdir/chaos.json"

echo "== persist smoke =="
# The durability layer's crash-safety gates: the recovery suite under
# the race detector (torn writes, truncation, bit flips, rotate-vs-
# append races), the kill-and-restore equivalence test, and the seed
# corpora of the persist decoders plus the window export/import
# fuzzer — decoders that eat arbitrary disk bytes must prove they
# never panic before anything below trusts a restart.
go test -race -run 'TestRecovery|TestKillRestore|TestRestore|TestSnapshot|TestCrash|TestRotate|TestAbort' \
  ./internal/persist/ ./internal/serve/
go test -run 'FuzzDecodeSnapshot|FuzzScanSegment' ./internal/persist/
go test -run 'FuzzWindowExportImport' ./internal/access/

echo "== serve smoke =="
# The serving layer end to end, race-instrumented: start blud on a
# loopback port, drive a seeded closed-loop bluload run against it, and
# require (a) the load report passes blumanifest's BENCH schema check
# with all three endpoint entries, (b) the embedded server snapshot
# proves the result cache actually absorbed repeats (nonzero
# serve_cache_hit_total), and (c) a SIGTERM drain flushes a manifest
# that validates with the same counters.
blud_pid=""
trap 'kill "$blud_pid" 2>/dev/null; rm -rf "$obsdir"' EXIT
go build -race -o "$obsdir/blud" ./cmd/blud
go build -race -o "$obsdir/bluload" ./cmd/bluload
"$obsdir/blud" -addr 127.0.0.1:0 -manifest "$obsdir/blud_manifest.json" \
  >"$obsdir/blud.out" 2>"$obsdir/blud.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
if [ -z "$addr" ]; then
  echo "ci: blud never reported its address" >&2
  cat "$obsdir/blud.out" "$obsdir/blud.err" >&2
  exit 1
fi
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 200 -o "$obsdir/bench_serve.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer,Serve/joint,Serve/schedule \
  -require serve_requests_total,serve_cache_hit_total \
  "$obsdir/bench_serve.json"
# A second, binary-codec run against the same daemon: the infer stream
# switches to the length-prefixed frames (request and response), which
# must negotiate cleanly under race instrumentation and show up in the
# daemon's serve_binary_total counter.
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 120 -codec binary -o "$obsdir/bench_serve_bin.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer \
  -require serve_requests_total,serve_binary_total \
  "$obsdir/bench_serve_bin.json"
# A third run drives the streaming refresh loop: observe batches fold
# into session windows while session-keyed infers solve from the live
# estimate, so the digest-delta invalidation path must fire for real —
# nonzero serve_observe_total and serve_invalidation_total prove
# batches folded AND moved digests under cached results.
"$obsdir/bluload" -addr "$addr" -seed 7 -c 4 -n 200 -mix observe -o "$obsdir/bench_serve_obs.json" >/dev/null
go run ./cmd/blumanifest -bench \
  -require-entry Serve/infer,Serve/observe \
  -require serve_requests_total,serve_observe_total,serve_invalidation_total \
  "$obsdir/bench_serve_obs.json"
kill -TERM "$blud_pid"
wait "$blud_pid"
blud_pid=""
go run ./cmd/blumanifest \
  -require serve_requests_total,serve_cache_hit_total,serve_infer_total,serve_joint_total,serve_schedule_total,serve_observe_total,serve_invalidation_total \
  "$obsdir/blud_manifest.json"

echo "== restart smoke =="
# Durable restart end to end, race-instrumented: a blud with -state
# takes an observe-mix bluload run, mints a session-keyed infer into
# its cache, and is then killed with SIGKILL — no drain, no final
# snapshot. The relaunched daemon must (a) report recovered state
# (nonzero persist_recovered_total in its drain manifest), and
# (b) answer the same session infer as a byte-identical cache hit,
# proving the snapshot+WAL image restored the streaming state and the
# minted response bytes exactly.
go build -race -o "$obsdir/bluprobe" ./cmd/bluprobe
statedir="$obsdir/state"
"$obsdir/blud" -addr 127.0.0.1:0 -state "$statedir" \
  -snapshot-interval 1s -wal-sync 5ms \
  >"$obsdir/blud2.out" 2>"$obsdir/blud2.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud2.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "ci: durable blud never reported its address" >&2; cat "$obsdir/blud2.err" >&2; exit 1; }
"$obsdir/bluload" -addr "$addr" -seed 11 -c 4 -n 200 -mix observe >/dev/null
printf '{"session":"load-a","options":{"seed":424242}}' >"$obsdir/probe.json"
# Repeated session infers converge on a warm-start fixed point (cold
# mint, then warm-keyed mints until the key repeats); the final probe
# must be a cache hit and its bytes are what the restart must
# reproduce.
for _ in 1 2 3 4; do
  "$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" >/dev/null
done
"$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" \
  -require-cache hit -save-body "$obsdir/prekill.bin" >/dev/null
# Let at least two snapshot ticks land so the minted cache entry is in
# the on-disk image, then kill without ceremony.
sleep 2.5
kill -9 "$blud_pid"
wait "$blud_pid" 2>/dev/null || true
blud_pid=""
"$obsdir/blud" -addr 127.0.0.1:0 -state "$statedir" \
  -snapshot-interval 1s -wal-sync 5ms -manifest "$obsdir/blud2_manifest.json" \
  >"$obsdir/blud3.out" 2>"$obsdir/blud3.err" &
blud_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/^blud: listening on //p' "$obsdir/blud3.out")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "ci: restarted blud never reported its address" >&2; cat "$obsdir/blud3.err" >&2; exit 1; }
grep -q '^blud: recovered' "$obsdir/blud3.err" || {
  echo "ci: restarted blud did not log its recovery" >&2; cat "$obsdir/blud3.err" >&2; exit 1; }
"$obsdir/bluprobe" -addr "$addr" -path /v1/infer -body "$obsdir/probe.json" \
  -require-cache hit -require-body-file "$obsdir/prekill.bin"
kill -TERM "$blud_pid"
wait "$blud_pid"
blud_pid=""
go run ./cmd/blumanifest \
  -require persist_recovered_total,persist_snapshots_total \
  "$obsdir/blud2_manifest.json"

echo "ci: all clean"
