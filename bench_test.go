// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure, run at reduced scale so the
// suite stays tractable — use cmd/blusim for paper-scale runs), plus
// micro-benchmarks of the core algorithms.
//
// Run with:
//
//	go test -bench=. -benchmem
package blu_test

import (
	"fmt"
	"testing"

	"blu"
	"blu/internal/blueprint"
	"blu/internal/experiments"
	"blu/internal/joint"
	"blu/internal/mcmc"
	"blu/internal/rng"
)

// benchFigure runs one experiment harness per benchmark iteration.
func benchFigure(b *testing.B, id string, scale float64) {
	b.Helper()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := runner(experiments.Options{Seed: uint64(i + 1), Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig04a(b *testing.B) { benchFigure(b, "fig4a", 0.1) }
func BenchmarkFig04b(b *testing.B) { benchFigure(b, "fig4b", 0.1) }
func BenchmarkFig04c(b *testing.B) { benchFigure(b, "fig4c", 0.1) }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "fig10", 0.05) }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11", 0.05) }
func BenchmarkFig12(b *testing.B)  { benchFigure(b, "fig12", 0.05) }
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "fig13", 0.05) }
func BenchmarkFig14a(b *testing.B) { benchFigure(b, "fig14a", 0.05) }
func BenchmarkFig14b(b *testing.B) { benchFigure(b, "fig14b", 0.05) }
func BenchmarkFig15(b *testing.B)  { benchFigure(b, "fig15", 0.05) }
func BenchmarkFig16(b *testing.B)  { benchFigure(b, "fig16", 0.05) }
func BenchmarkFig17(b *testing.B)  { benchFigure(b, "fig17", 0.05) }
func BenchmarkFig18(b *testing.B)  { benchFigure(b, "fig18", 0.05) }

func BenchmarkMeasurementOverhead(b *testing.B) { benchFigure(b, "overhead", 1) }
func BenchmarkAblationInference(b *testing.B)   { benchFigure(b, "ablation", 0.15) }
func BenchmarkDLAccessAware(b *testing.B)       { benchFigure(b, "dl", 0.1) }
func BenchmarkSkewedTriples(b *testing.B)       { benchFigure(b, "skewed", 0.15) }
func BenchmarkFairness(b *testing.B)            { benchFigure(b, "fairness", 0.1) }
func BenchmarkFractionalImpact(b *testing.B)    { benchFigure(b, "fractional", 0.2) }

// BenchmarkInfer measures the deterministic topology inference on exact
// measurements as the cell size grows, across parallelism settings.
// P=1 is the sequential baseline, P=0 uses every core; the determinism
// tests guarantee all settings return the identical topology, so the
// ratio between the P lines is pure wall-clock speedup.
func BenchmarkInfer(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		truth := randomTopo(n, n+n/2, 7)
		meas := truth.Measure()
		for _, par := range []int{1, 4, 0} {
			label := fmt.Sprintf("N=%d/P=%d", n, par)
			if par == 0 {
				label = fmt.Sprintf("N=%d/P=max", n)
			}
			b.Run(label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := blueprint.Infer(meas, blueprint.InferOptions{Seed: uint64(i), Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInferMCMC is the Bayesian baseline for the same instance
// sizes (the Section 3.4 ablation), including the 4-chain configuration
// sequential vs parallel.
func BenchmarkInferMCMC(b *testing.B) {
	for _, n := range []int{8, 16} {
		truth := randomTopo(n, n+n/2, 7)
		meas := truth.Measure()
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mcmc.Infer(meas, mcmc.Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("N=%d/Chains=4/P=%d", n, par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := mcmc.Infer(meas, mcmc.Options{Seed: uint64(i), Chains: 4, Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkJointProb measures one higher-order joint-distribution query
// via recursive conditioning (Section 3.6), uncached and cached.
func BenchmarkJointProb(b *testing.B) {
	topo := randomTopo(24, 30, 3)
	clear := blueprint.NewClientSet(0, 5, 9)
	blocked := blueprint.NewClientSet(2, 7, 11, 13)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			calc := joint.NewCalculator(topo)
			_ = calc.Prob(clear, blocked)
		}
	})
	b.Run("warm", func(b *testing.B) {
		calc := joint.NewCalculator(topo)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = calc.Prob(clear, blocked)
		}
	})
}

// BenchmarkSpeculativeSchedule measures one full subframe scheduling
// decision of BLU's speculative scheduler at the Fig 15 working point.
func BenchmarkSpeculativeSchedule(b *testing.B) {
	for _, m := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			cell, err := blu.NewCell(blu.CellConfig{
				Scenario:  blu.NewTestbedScenario(16, 24, 5),
				M:         m,
				Subframes: 100,
				Seed:      9,
			})
			if err != nil {
				b.Fatal(err)
			}
			spec, err := blu.NewSpeculative(cell.Env(), blu.NewCalculator(cell.GroundTruth()))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = spec.Schedule(i % 100)
			}
		})
	}
}

// BenchmarkSchedule measures one full subframe scheduling decision for
// each of the paper's three schedulers on the same Fig-15 working-point
// cell, mirroring the scheduler section cmd/blubench writes into the
// BENCH JSON. With -benchmem it exposes the steady-state allocation
// profile of the kernels (scratch reuse, flat caches, per-call arena).
func BenchmarkSchedule(b *testing.B) {
	const subframes = 100
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(16, 24, 5),
		M:         2,
		Subframes: subframes,
		Seed:      9,
	})
	if err != nil {
		b.Fatal(err)
	}
	env := cell.Env()
	calc := blu.NewCalculator(cell.GroundTruth())
	pf, err := blu.NewPF(env)
	if err != nil {
		b.Fatal(err)
	}
	aa, err := blu.NewAccessAware(env, calc)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := blu.NewSpeculative(env, calc)
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range []struct {
		name string
		s    blu.Scheduler
	}{
		{"PF", pf},
		{"AA", aa},
		{"BLU", spec},
	} {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sc.s.Schedule(i % subframes)
			}
		})
	}
}

// BenchmarkMeasurementPlan measures Algorithm 1 planning for the
// paper's N=20, K=8, T=50 anchor case.
func BenchmarkMeasurementPlan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err := blu.BuildMeasurementPlan(blu.MeasurementPlanOptions{N: 20, K: 8, T: 50})
		if err != nil {
			b.Fatal(err)
		}
		if plan.TMax() == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkCellConstruction measures building a full simulated cell
// (WiFi activity + channel + access masks) for a 10-second horizon.
func BenchmarkCellConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := blu.NewCell(blu.CellConfig{
			Scenario:  blu.NewTestbedScenario(8, 12, uint64(i)),
			Subframes: 10000,
			Seed:      uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func randomTopo(n, h int, seed uint64) *blueprint.Topology {
	r := rng.New(seed)
	topo := &blueprint.Topology{N: n}
	for k := 0; k < h; k++ {
		var set blueprint.ClientSet
		for i := 0; i < n; i++ {
			if r.Bool(0.25) {
				set = set.Add(i)
			}
		}
		if set.Empty() {
			set = set.Add(r.Intn(n))
		}
		topo.HTs = append(topo.HTs, blueprint.HiddenTerminal{
			Q:       0.1 + 0.4*r.Float64(),
			Clients: set,
		})
	}
	return topo.Normalize()
}
