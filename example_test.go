package blu_test

import (
	"fmt"

	"blu"
)

// ExampleInfer demonstrates blue-printing an interference topology from
// exact pair-wise access measurements.
func ExampleInfer() {
	// Ground truth: terminal A silences clients 0 and 1 (q = 0.4),
	// terminal B silences client 2 (q = 0.25).
	truth := &blu.Topology{N: 3, HTs: []blu.HiddenTerminal{
		{Q: 0.4, Clients: blu.NewClientSet(0, 1)},
		{Q: 0.25, Clients: blu.NewClientSet(2)},
	}}
	res, err := blu.Infer(truth.Measure(), blu.InferOptions{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Topology)
	fmt.Printf("accuracy: %.0f%%\n", 100*blu.InferenceAccuracy(truth, res.Topology))
	// Output:
	// N=3 h=2 [q=0.40→{0,1}] [q=0.25→{2}]
	// accuracy: 100%
}

// ExampleCalculator_Prob derives a higher-order joint access
// distribution from a blueprint by recursive topology conditioning.
func ExampleCalculator_Prob() {
	topo := &blu.Topology{N: 3, HTs: []blu.HiddenTerminal{
		{Q: 0.5, Clients: blu.NewClientSet(0, 1)},
		{Q: 0.5, Clients: blu.NewClientSet(2)},
	}}
	calc := blu.NewCalculator(topo)
	// P(client 0 transmits while clients 1 and 2 are blocked): clients
	// 0 and 1 share their only terminal, so this is impossible.
	fmt.Printf("%.2f\n", calc.Prob(blu.NewClientSet(0), blu.NewClientSet(1, 2)))
	// P(clients 0 and 1 transmit while 2 is blocked) = 0.5 · 0.5.
	fmt.Printf("%.2f\n", calc.Prob(blu.NewClientSet(0, 1), blu.NewClientSet(2)))
	// Output:
	// 0.00
	// 0.25
}

// ExampleMeasurementLowerBound reproduces the paper's Section 3.3
// overhead arithmetic for a 20-client cell.
func ExampleMeasurementLowerBound() {
	fmt.Println(blu.MeasurementLowerBound(20, 8, 50))
	// Output:
	// 340
}

// ExampleBuildMeasurementPlan schedules Algorithm-1 measurement
// subframes and shows the plan stays near the pair-wise lower bound.
func ExampleBuildMeasurementPlan() {
	plan, err := blu.BuildMeasurementPlan(blu.MeasurementPlanOptions{N: 8, K: 4, T: 10})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("covers every pair at least %d times\n", plan.MinPairCount())
	fmt.Printf("bound: %d subframes\n", blu.MeasurementLowerBound(8, 4, 10))
	fmt.Printf("within 2x of bound: %v\n", plan.TMax() <= 2*blu.MeasurementLowerBound(8, 4, 10))
	// Output:
	// covers every pair at least 10 times
	// bound: 47 subframes
	// within 2x of bound: true
}
