// Localize: the paper's second "broader impact" application — coarse
// indoor localization of clients using inferred hidden terminals as
// landmarks.
//
// In an enterprise deployment the interfering WiFi APs' positions are
// known (they are the operator's own neighboring cells). BLU's
// blueprint tells us, per client, *which* of those landmarks it senses:
// the client must then lie within the energy-detection range of every
// blocking landmark and outside the range of every non-blocking one.
// Intersecting those annuli by grid search gives a coarse position fix
// without any ranging hardware.
package main

import (
	"fmt"
	"log"
	"math"

	"blu"
)

const (
	floorW, floorH = 140.0, 140.0
	// edRangeM is the energy-detection range at 15 dBm under the
	// indoor-office model (−70 dBm threshold ≈ 32 m).
	edRangeM = 32.0
)

func main() {
	const (
		numUE = 8
		numHT = 16
	)
	scenario := blu.NewTestbedScenario(numUE, numHT, 77)
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  scenario,
		Subframes: 20000,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Blueprint the interference from pair-wise access measurements.
	inf, err := blu.Infer(blu.EstimateMeasurements(cell), blu.InferOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	truth := cell.GroundTruth()
	fmt.Printf("inference accuracy: %.0f%% (h=%d landmarks usable)\n\n",
		100*blu.InferenceAccuracy(truth, inf.Topology), len(inf.Topology.HTs))

	// Match each inferred terminal to a known AP by its edge set (the
	// ground-truth blueprint is what the operator's AP inventory
	// implies), then localize every client against those landmarks.
	landmarkEdges := make(map[blu.ClientSet]int) // edge set → station index
	for k := range scenario.Stations {
		var set blu.ClientSet
		for i := range scenario.UEs {
			if scenario.Blocks(k, i) && scenario.HiddenFromENB(k) {
				set = set.Add(i)
			}
		}
		if !set.Empty() {
			landmarkEdges[set] = k
		}
	}

	fmt.Printf("%-4s %-18s %-18s %10s\n", "UE", "true position", "estimate", "error (m)")
	var totalErr float64
	located := 0
	for i := range scenario.UEs {
		var inRange, outRange []int
		for _, ht := range inf.Topology.HTs {
			k, ok := landmarkEdges[ht.Clients]
			if !ok {
				continue // inferred terminal matches no known AP
			}
			if ht.Clients.Has(i) {
				inRange = append(inRange, k)
			} else {
				outRange = append(outRange, k)
			}
		}
		if len(inRange) == 0 {
			fmt.Printf("%-4d %-18v %-18s %10s\n", i, scenario.UEs[i], "(no landmarks)", "-")
			continue
		}
		est := gridSearch(scenario, inRange, outRange)
		errM := math.Hypot(est[0]-scenario.UEs[i].X, est[1]-scenario.UEs[i].Y)
		totalErr += errM
		located++
		fmt.Printf("%-4d %-18v (%6.1f, %6.1f)  %10.1f\n",
			i, scenario.UEs[i], est[0], est[1], errM)
	}
	if located > 0 {
		fmt.Printf("\nmean error: %.1f m over %d clients (floor %v x %v m, ED range %v m)\n",
			totalErr/float64(located), located, floorW, floorH, edRangeM)
	}
}

// gridSearch returns the centroid of the floor region minimizing hinge
// losses against the in-range/out-of-range landmark constraints — the
// whole feasible region is the coarse fix, so its centroid is the point
// estimate.
func gridSearch(sc *blu.Scenario, inRange, outRange []int) [2]float64 {
	const step = 2.0
	lossAt := func(x, y float64) float64 {
		var loss float64
		for _, k := range inRange {
			d := math.Hypot(x-sc.Stations[k].X, y-sc.Stations[k].Y)
			if d > edRangeM {
				loss += d - edRangeM
			}
		}
		for _, k := range outRange {
			d := math.Hypot(x-sc.Stations[k].X, y-sc.Stations[k].Y)
			if d < edRangeM {
				loss += (edRangeM - d) * 0.25 // out-of-range is softer evidence
			}
		}
		return loss
	}
	bestLoss := math.Inf(1)
	for x := 0.0; x <= floorW; x += step {
		for y := 0.0; y <= floorH; y += step {
			if l := lossAt(x, y); l < bestLoss {
				bestLoss = l
			}
		}
	}
	// Centroid of the near-optimal region.
	var sx, sy, n float64
	for x := 0.0; x <= floorW; x += step {
		for y := 0.0; y <= floorH; y += step {
			if lossAt(x, y) <= bestLoss+1e-9 {
				sx += x
				sy += y
				n++
			}
		}
	}
	return [2]float64{sx / n, sy / n}
}
