// MU-MIMO: a 4-antenna eNB schedules up to 4 concurrent uplink streams
// per resource block; BLU over-schedules up to 8 clients per RB using
// the higher-order joint access distributions derived from the
// blueprint (Section 3.6) and is compared against PF and the
// access-aware baseline as the antenna count grows (the Fig 17 story).
package main

import (
	"fmt"
	"log"

	"blu"
)

func main() {
	const (
		numUE     = 16
		numHT     = 24
		subframes = 12000
	)
	fmt.Printf("%-3s %12s %12s %12s %10s %10s\n",
		"M", "pf_mbps", "aa_mbps", "blu_mbps", "aa_gain", "blu_gain")
	for _, m := range []int{1, 2, 4} {
		cell, err := blu.NewCell(blu.CellConfig{
			Scenario:  blu.NewTestbedScenario(numUE, numHT, 99),
			M:         m,
			Subframes: subframes,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Blueprint once from pair-wise measurements; the same
		// blueprint serves every antenna configuration.
		inf, err := blu.Infer(blu.EstimateMeasurements(cell), blu.InferOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		calc := blu.NewCalculator(inf.Topology)

		env := cell.Env()
		pf, err := blu.NewPF(env)
		if err != nil {
			log.Fatal(err)
		}
		aa, err := blu.NewAccessAware(env, calc)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := blu.NewSpeculative(env, calc)
		if err != nil {
			log.Fatal(err)
		}

		pfM := blu.RunScheduler(cell, pf, 0, subframes)
		aaM := blu.RunScheduler(cell, aa, 0, subframes)
		bluM := blu.RunScheduler(cell, spec, 0, subframes)
		fmt.Printf("%-3d %12.2f %12.2f %12.2f %9.2fx %9.2fx\n",
			m, pfM.ThroughputMbps, aaM.ThroughputMbps, bluM.ThroughputMbps,
			aaM.GainOver(pfM), bluM.GainOver(pfM))
	}
	fmt.Println("\nBLU's gain grows with M: more concurrent streams are at risk")
	fmt.Println("of going unused per RB, so interference diversity buys more.")
}
