// Enterprise: run the full BLU controller (Fig 9) on an enterprise
// deployment — alternating Algorithm-1 measurement phases with long
// speculative phases — and report the phase structure, the measurement
// overhead, the inferred blueprint, and the steady-state gains over the
// native PF scheduler.
package main

import (
	"fmt"
	"log"

	"blu"
)

func main() {
	const (
		numUE     = 12
		numHT     = 18
		subframes = 30000 // 30 s of uplink
	)
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(numUE, numHT, 2026),
		M:         1,
		Subframes: subframes,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: native PF over the same horizon.
	pf, err := blu.NewPF(cell.Env())
	if err != nil {
		log.Fatal(err)
	}
	pfM := blu.RunScheduler(cell, pf, 0, subframes)

	// BLU: measurement phase (T=50 samples per pair), then speculative
	// phases of L=10000 subframes, re-blueprinting between phases.
	sys, err := blu.NewSystem(blu.SystemConfig{T: 50, L: 10000}, cell)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("controller phases over %d subframes:\n", subframes)
	for i, ph := range rep.Phases {
		switch ph.Kind.String() {
		case "measurement":
			fmt.Printf("  %2d. measurement  %5d subframes\n", i+1, ph.Subframes)
		default:
			fmt.Printf("  %2d. speculative  %5d subframes  (inference accuracy %.0f%%, h=%d)\n",
				i+1, ph.Subframes, 100*ph.InferenceAccuracy, len(ph.Inferred.HTs))
		}
	}
	lb := blu.MeasurementLowerBound(numUE, 8, 50)
	fmt.Printf("\nmeasurement overhead: %d subframes (pair-wise lower bound F_min=%d)\n",
		rep.MeasurementSubframes, lb)
	fmt.Printf("ground truth:  %v\n", cell.GroundTruth())
	fmt.Printf("final blueprint: %v\n", rep.FinalTopology)

	fmt.Printf("\n%-14s %10s %14s\n", "scheduler", "goodput", "RB utilization")
	fmt.Printf("%-14s %7.2f Mbps %13.0f%%\n", "PF", pfM.ThroughputMbps, 100*pfM.RBUtilization)
	fmt.Printf("%-14s %7.2f Mbps %13.0f%%\n", "BLU (spec.)", rep.Speculative.ThroughputMbps, 100*rep.Speculative.RBUtilization)
	fmt.Printf("\nBLU gain over PF: %.2fx throughput\n",
		rep.Speculative.ThroughputMbps/pfM.ThroughputMbps)
}
