// Channel selection: the paper's "broader impact" application — use
// BLU's interference blueprinting to assess the hidden-terminal impact
// on each candidate unlicensed channel and pick the one where scheduled
// uplink grants are most likely to be usable.
//
// Each channel hosts a different WiFi population; the eNB briefly
// measures pair-wise access distributions on each, blueprints the
// interference, and scores the channel by the blueprint-predicted
// expected grant usability averaged over clients.
package main

import (
	"fmt"
	"log"

	"blu"
)

func main() {
	const numUE = 8
	type channel struct {
		name string
		seed uint64
		hts  int
	}
	channels := []channel{
		{"ch 36", 301, 6},
		{"ch 40", 302, 14},
		{"ch 44", 303, 10},
		{"ch 48", 304, 20},
	}

	fmt.Printf("%-6s %4s %14s %14s %16s\n",
		"chan", "HTs", "mean p(i)", "pred. usable", "blueprint h")
	bestIdx, bestScore := -1, -1.0
	for i, ch := range channels {
		cell, err := blu.NewCell(blu.CellConfig{
			Scenario:  blu.NewTestbedScenario(numUE, ch.hts, ch.seed),
			Subframes: 10000,
			Seed:      ch.seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		inf, err := blu.Infer(blu.EstimateMeasurements(cell), blu.InferOptions{Seed: ch.seed})
		if err != nil {
			log.Fatal(err)
		}

		// Channel score: blueprint-predicted probability that a
		// scheduled grant is usable, averaged over clients.
		var meanP, predicted float64
		for ue := 0; ue < numUE; ue++ {
			meanP += inf.Topology.AccessProb(ue)
		}
		meanP /= numUE
		// With BLU's pairing, a grant is wasted only when both of an
		// over-scheduled pair are blocked; approximate the channel's
		// recoverable utilization with the best complementary pair per
		// client.
		calc := blu.NewCalculator(inf.Topology)
		for ue := 0; ue < numUE; ue++ {
			best := inf.Topology.AccessProb(ue)
			for other := 0; other < numUE; other++ {
				if other == ue {
					continue
				}
				pair := blu.NewClientSet(ue, other)
				bothBlocked := calc.Prob(0, pair)
				if u := 1 - bothBlocked; u > best {
					best = u
				}
			}
			predicted += best
		}
		predicted /= numUE

		fmt.Printf("%-6s %4d %13.0f%% %13.0f%% %16d\n",
			ch.name, ch.hts, 100*meanP, 100*predicted, len(inf.Topology.HTs))
		if predicted > bestScore {
			bestIdx, bestScore = i, predicted
		}
	}
	fmt.Printf("\nselected channel: %s (predicted %.0f%% grant usability with over-scheduling)\n",
		channels[bestIdx].name, 100*bestScore)
}
