// Quickstart: simulate an unlicensed-band LTE uplink cell with WiFi
// hidden terminals, infer the interference blueprint from pair-wise
// access measurements, and compare the native proportional-fair
// scheduler against BLU's speculative scheduler.
package main

import (
	"fmt"
	"log"

	"blu"
)

func main() {
	// An 8-UE cell ringed by 12 WiFi stations that are hidden from the
	// eNB but silence nearby UEs' CCAs (the paper's Fig 1 setting).
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(8, 12, 42),
		M:         1, // SISO
		Subframes: 20000,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ground-truth interference:", cell.GroundTruth())

	// Blueprint the interference from pair-wise access distributions.
	meas := blu.EstimateMeasurements(cell)
	inf, err := blu.Infer(meas, blu.InferOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred blueprint:       ", inf.Topology)
	fmt.Printf("inference accuracy:        %.0f%%\n",
		100*blu.InferenceAccuracy(cell.GroundTruth(), inf.Topology))

	// Native PF scheduler (Eqn 1) versus BLU's speculative scheduler
	// (Eqns 3-4) driven by the inferred blueprint.
	env := cell.Env()
	pf, err := blu.NewPF(env)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := blu.NewSpeculative(env, blu.NewCalculator(inf.Topology))
	if err != nil {
		log.Fatal(err)
	}

	pfM := blu.RunScheduler(cell, pf, 0, cell.Subframes())
	bluM := blu.RunScheduler(cell, spec, 0, cell.Subframes())

	fmt.Printf("\n%-12s %12s %14s\n", "scheduler", "goodput", "RB utilization")
	for _, m := range []*blu.Metrics{pfM, bluM} {
		fmt.Printf("%-12s %9.2f Mbps %14.0f%%\n", m.Scheduler, m.ThroughputMbps, 100*m.RBUtilization)
	}
	fmt.Printf("\nBLU gain over PF: %.2fx throughput, %.2fx utilization\n",
		bluM.GainOver(pfM), bluM.RBUtilization/pfM.RBUtilization)
}
