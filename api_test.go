package blu_test

import (
	"math"
	"testing"

	"blu"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: build a cell, measure, infer, schedule, compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(6, 9, 7),
		Subframes: 8000,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	meas := blu.EstimateMeasurements(cell)
	inf, err := blu.Infer(meas, blu.InferOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := blu.InferenceAccuracy(cell.GroundTruth(), inf.Topology); acc < 0.6 {
		t.Errorf("inference accuracy %v", acc)
	}

	env := cell.Env()
	pf, err := blu.NewPF(env)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := blu.NewSpeculative(env, blu.NewCalculator(inf.Topology))
	if err != nil {
		t.Fatal(err)
	}
	pfM := blu.RunScheduler(cell, pf, 0, cell.Subframes())
	bluM := blu.RunScheduler(cell, spec, 0, cell.Subframes())
	if bluM.ThroughputMbps <= pfM.ThroughputMbps {
		t.Errorf("BLU %v <= PF %v", bluM.ThroughputMbps, pfM.ThroughputMbps)
	}
}

func TestPublicAPISystem(t *testing.T) {
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(5, 8, 11),
		Subframes: 5000,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := blu.NewSystem(blu.SystemConfig{T: 30, L: 2000}, cell)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 || rep.Speculative.TotalBits == 0 {
		t.Error("system run produced nothing")
	}
}

func TestPublicAPITraceFlow(t *testing.T) {
	mk := func(seed uint64) *blu.Trace {
		cell, err := blu.NewCell(blu.CellConfig{
			Scenario:  blu.NewTestbedScenario(4, 6, seed),
			Subframes: 2000,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cell.Export("api")
	}
	combined, err := blu.CombineTraceUEs(mk(1), mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if combined.NumUE != 8 {
		t.Fatalf("combined NumUE = %d", combined.NumUE)
	}
	replay, err := blu.NewCellFromTrace(combined, blu.ReplayConfig{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if replay.NumUE() != 8 {
		t.Errorf("replay NumUE = %d", replay.NumUE())
	}

	dense, err := blu.CombineTraceInterference(mk(3), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Interference) != 12 {
		t.Errorf("dense stations = %d", len(dense.Interference))
	}
}

func TestPublicAPIMeasurementPlan(t *testing.T) {
	plan, err := blu.BuildMeasurementPlan(blu.MeasurementPlanOptions{N: 10, K: 4, T: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TMax() < blu.MeasurementLowerBound(10, 4, 5) {
		t.Error("plan below lower bound")
	}
	est := blu.NewEstimator(10)
	for _, clients := range plan.Subframes {
		est.Record(clients, blu.NewClientSet(clients...)) // everyone accesses
	}
	m := est.Measurements()
	for i := 0; i < 10; i++ {
		if math.Abs(m.P[i]-1) > 1e-9 {
			t.Errorf("p(%d) = %v, want 1", i, m.P[i])
		}
	}
}

func TestPublicAPIOutcomeConstants(t *testing.T) {
	names := map[blu.Outcome]string{
		blu.OutcomeIdle:      "idle",
		blu.OutcomeBlocked:   "blocked",
		blu.OutcomeCollision: "collision",
		blu.OutcomeFading:    "fading",
		blu.OutcomeSuccess:   "success",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%v.String() = %q", int(o), o.String())
		}
	}
}
