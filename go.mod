module blu

go 1.22
