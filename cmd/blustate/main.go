// Command blustate inspects and converts blud state directories across
// on-disk format versions. Inspection reads the snapshot and WAL
// segment headers without opening the store (safe on a directory a
// crashed daemon left behind); conversion rewrites a closed directory
// in the v1 framing so an operator can roll back to a pre-versioning
// daemon — the forward direction needs no tool, because a v2 daemon
// opens v1 state in place (read-old/write-new, persist_migrated_total).
//
// Usage:
//
//	blustate <state-dir>            inspect: formats and record counts
//	blustate -to v1 <state-dir>     downgrade every artifact to v1
//	blustate -json <state-dir>      inspect, machine-readable
//
// The directory must not be held open by a live daemon when
// converting. A damaged artifact refuses a lossy rewrite; open the
// directory with blud first (recovery skips the damage and the next
// snapshot cycle rewrites clean files), then convert.
//
// Exit status is nonzero on any failure, with the reason on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"blu/internal/persist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blustate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blustate", flag.ContinueOnError)
	to := fs.String("to", "", "convert the directory to this format version (only \"v1\")")
	asJSON := fs.Bool("json", false, "print the inspection as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: blustate [-to v1] [-json] <state-dir>")
	}
	dir := fs.Arg(0)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return fmt.Errorf("%s is not a state directory", dir)
	}

	switch *to {
	case "":
		return inspect(dir, *asJSON)
	case "v1":
		stats, err := persist.DowngradeStateDir(dir)
		if err != nil {
			return err
		}
		fmt.Printf("blustate: %s rewritten v1: snapshot %d records, %d WAL segments (%d records)\n",
			dir, stats.SnapshotRecords, stats.WALSegments, stats.WALRecords)
		return nil
	default:
		return fmt.Errorf("-to %q: only v1 is a valid conversion target", *to)
	}
}

func inspect(dir string, asJSON bool) error {
	st, err := persist.InspectStateDir(dir)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	if st.SnapshotVersion == 0 {
		fmt.Printf("%s: no snapshot\n", dir)
	} else {
		fmt.Printf("%s: snapshot v%d, %d records, cut LSN %d", dir, st.SnapshotVersion, st.SnapshotRecords, st.Cut)
		if st.SnapshotDamaged > 0 {
			fmt.Printf(", %d damaged", st.SnapshotDamaged)
		}
		fmt.Println()
	}
	for _, seg := range st.Segments {
		fmt.Printf("  wal-%016x: v%d, %d records", seg.FirstLSN, seg.Version, seg.Records)
		if seg.Damaged {
			fmt.Print(", damaged")
		}
		fmt.Println()
	}
	return nil
}
