// Command blusim regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	blusim list                 # show available experiments
//	blusim all [flags]          # run every experiment in order
//	blusim fig15 [flags]        # run one experiment
//
// Flags:
//
//	-scale f     workload scale in (0,1], 1 = paper scale (default 1)
//	-seed n      random seed (default 1)
//	-parallel n  worker goroutines per experiment (0 = all cores,
//	             1 = sequential); tables are identical at any setting
//
// Each experiment prints a table whose rows mirror the series the
// corresponding paper figure plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blu/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blusim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blusim", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "workload scale in (0,1]; 1 is paper scale")
	seed := fs.Uint64("seed", 1, "random seed")
	par := fs.Int("parallel", 0, "worker goroutines per experiment (0 = all cores, 1 = sequential)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: blusim [flags] <experiment|all|list>")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "experiments:", experiments.IDs())
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *par}
	reg := experiments.Registry()

	switch cmd := fs.Arg(0); cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "all":
		for _, id := range experiments.IDs() {
			if err := runOne(reg, id, opts); err != nil {
				return err
			}
		}
		return nil
	default:
		return runOne(reg, cmd, opts)
	}
}

func runOne(reg map[string]experiments.Runner, id string, opts experiments.Options) error {
	runner, ok := reg[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (try: blusim list)", id)
	}
	start := time.Now()
	table, err := runner(opts)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	table.Fprint(os.Stdout)
	fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	return nil
}
