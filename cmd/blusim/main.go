// Command blusim regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	blusim list                 # show available experiments
//	blusim all [flags]          # run every experiment in order
//	blusim fig15 [flags]        # run one experiment
//
// Flags:
//
//	-scale f       workload scale in (0,1], 1 = paper scale (default 1)
//	-seed n        random seed (default 1)
//	-parallel n    worker goroutines per experiment (0 = all cores,
//	               1 = sequential); tables are identical at any setting
//	-metrics file  enable the obs layer and write a JSON run manifest
//	               (config, seed, per-experiment timings, metric snapshot)
//	-pprof addr    serve net/http/pprof on addr (e.g. localhost:6060)
//	-faults list   comma-separated fault scenarios for the chaos
//	               experiment (default: all presets; try `blusim
//	               -faults stall,loss chaos`)
//
// Each experiment prints a table whose rows mirror the series the
// corresponding paper figure plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blu/internal/experiments"
	"blu/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blusim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blusim", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "workload scale in (0,1]; 1 is paper scale")
	seed := fs.Uint64("seed", 1, "random seed")
	par := fs.Int("parallel", 0, "worker goroutines per experiment (0 = all cores, 1 = sequential)")
	metrics := fs.String("metrics", "", "write a JSON run manifest to this file (enables metric recording)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	faultList := fs.String("faults", "", "comma-separated fault scenarios for the chaos experiment (empty = all presets)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: blusim [flags] <experiment|all|list>")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "experiments:", experiments.IDs())
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}
	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "blusim: pprof on http://%s/debug/pprof/\n", addr)
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *par, Faults: *faultList}
	reg := experiments.Registry()

	var man *obs.Manifest
	if *metrics != "" {
		obs.Enable()
		man = obs.NewManifest("blusim", args)
		man.Seed = *seed
		man.Config = map[string]any{
			"scale":    *scale,
			"seed":     *seed,
			"parallel": *par,
			"faults":   *faultList,
		}
	}

	switch cmd := fs.Arg(0); cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "all":
		for _, id := range experiments.IDs() {
			if err := runOne(reg, id, opts, man); err != nil {
				return err
			}
		}
	default:
		if err := runOne(reg, cmd, opts, man); err != nil {
			return err
		}
	}
	if man != nil {
		if err := man.Write(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "blusim: wrote manifest %s\n", *metrics)
	}
	return nil
}

func runOne(reg map[string]experiments.Runner, id string, opts experiments.Options, man *obs.Manifest) error {
	runner, ok := reg[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (try: blusim list)", id)
	}
	start := time.Now()
	table, err := runner(opts)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if man != nil {
		man.AddPhase(id, table.Title, time.Since(start))
	}
	table.Fprint(os.Stdout)
	fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	return nil
}
