// Command bluprobe issues one HTTP request against a running blud and
// asserts on the answer — the scriptable half of the restart-smoke in
// ci.sh, which needs to prove that a session-keyed infer after a
// kill -9 restart answers byte-identically from the restored cache.
//
// Usage:
//
//	bluprobe -addr HOST:PORT [flags]
//
// Flags:
//
//	-addr a               target daemon address (required)
//	-path p               endpoint path (default /v1/infer)
//	-body file            request body file (JSON; "-" reads stdin,
//	                      empty sends a GET instead of a POST)
//	-require-status n     fail unless the response status equals n
//	                      (default 200)
//	-require-cache v      fail unless the X-Blu-Cache header equals v
//	                      (e.g. hit or miss; empty = don't check)
//	-save-body file       write the response body here
//	-require-body-file f  fail unless the response body is byte-
//	                      identical to this file's contents
//
// Exit status is nonzero on transport errors or any failed assertion,
// with a one-line reason on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bluprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bluprobe", flag.ContinueOnError)
	addr := fs.String("addr", "", "target daemon address (host:port)")
	path := fs.String("path", "/v1/infer", "endpoint path")
	bodyFile := fs.String("body", "", "request body file (- = stdin, empty = GET)")
	wantStatus := fs.Int("require-status", http.StatusOK, "fail unless the response status matches")
	wantCache := fs.String("require-cache", "", "fail unless X-Blu-Cache equals this (empty = skip)")
	saveBody := fs.String("save-body", "", "write the response body to this file")
	wantBodyFile := fs.String("require-body-file", "", "fail unless the body equals this file byte-for-byte")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	var reqBody []byte
	if *bodyFile == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("read stdin: %w", err)
		}
		reqBody = data
	} else if *bodyFile != "" {
		data, err := os.ReadFile(*bodyFile)
		if err != nil {
			return err
		}
		reqBody = data
	}

	client := &http.Client{Timeout: 60 * time.Second}
	url := "http://" + *addr + *path
	var resp *http.Response
	var err error
	if reqBody == nil {
		resp, err = client.Get(url)
	} else {
		resp, err = client.Post(url, "application/json", bytes.NewReader(reqBody))
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("read response: %w", err)
	}

	if resp.StatusCode != *wantStatus {
		return fmt.Errorf("%s: status %d, want %d: %s", *path, resp.StatusCode, *wantStatus, bytes.TrimSpace(body))
	}
	if *wantCache != "" {
		if got := resp.Header.Get("X-Blu-Cache"); got != *wantCache {
			return fmt.Errorf("%s: X-Blu-Cache %q, want %q", *path, got, *wantCache)
		}
	}
	if *saveBody != "" {
		if err := os.WriteFile(*saveBody, body, 0o644); err != nil {
			return err
		}
	}
	if *wantBodyFile != "" {
		want, err := os.ReadFile(*wantBodyFile)
		if err != nil {
			return err
		}
		if !bytes.Equal(body, want) {
			return fmt.Errorf("%s: body differs from %s (%d vs %d bytes)", *path, *wantBodyFile, len(body), len(want))
		}
	}
	fmt.Printf("bluprobe: %s %d (%d bytes)\n", *path, resp.StatusCode, len(body))
	return nil
}
