// Command bluload is a deterministic closed-loop load generator for
// blud. It synthesizes a seeded pool of request payloads (random
// hidden-terminal topologies rendered as measurements, joint queries,
// and schedule requests), drives them against a running daemon from a
// fixed worker count, and reports throughput plus latency percentiles
// per endpoint. The request mix is a pure function of (seed, request
// index), so two runs against equivalent servers issue byte-identical
// request streams.
//
// Usage:
//
//	bluload -addr HOST:PORT [flags]
//
// Flags:
//
//	-addr a      target daemon address (required)
//	-seed n      payload/mix seed (default 1)
//	-c n         concurrent closed-loop workers (default 4)
//	-n n         total requests (default 300; ignored when -duration set)
//	-duration d  run for a wall-clock window instead of a fixed count
//	-qps q       paced request rate (0 = unpaced closed loop)
//	-mix m       traffic mix: default (60% inline infer / 20% joint /
//	             20% schedule) or observe (30% /v1/observe batches, 30%
//	             session-keyed infers solved from the live windowed
//	             estimate, 20% joint, 20% schedule — the streaming
//	             refresh loop under load). Sessions are pre-seeded
//	             synchronously before the window starts, so no worker
//	             races a 404.
//	-cells n     fleet mode: target a blufleet router instead of a single
//	             daemon and drive a per-cell mix over n cells — observe
//	             batches and session-keyed infers against the canonical
//	             cell:<id> sessions (every request routed with ?cell=),
//	             plus joint/schedule cycled across cells round-robin.
//	             The cell directory is derived from (-cells, -seed), the
//	             same derivation blufleet uses, so membership agrees
//	             with the fleet without shared files. Report entries are
//	             named Fleet/* and the embedded /metrics snapshot is the
//	             router's fleet-wide aggregate.
//	-codec c     infer wire codec: json (default) or binary — binary
//	             sends serve's length-prefixed frames and asks for them
//	             back via Accept, so comparing the two runs isolates
//	             the JSON tax (joint/schedule stay JSON either way). In
//	             the observe mix, binary applies to the observe frames;
//	             session infers stay JSON so the cache/invalidation
//	             path is driven identically under both codecs.
//	-o file      write an obs.BenchReport JSON (entries Serve/infer,
//	             Serve/joint, Serve/schedule, and Serve/observe in the
//	             observe mix; the server's /metrics snapshot is
//	             embedded so its serve_cache_* and serve_observe_*
//	             counters ride along)
//
// Exit status is nonzero when any request fails (transport error or a
// status other than 200/429/307; 429s are backpressure and 307s are
// reshard fences, counted but not failures).
//
// Backpressure is honored, not just counted: a 429 carrying
// Retry-After makes the worker sleep out the advertised horizon —
// capped, with seeded jitter so two runs back off identically and a
// worker fleet never retries in lockstep — and retry the same request
// up to three more times before letting the rejection stand. A 307
// (a fleet router fencing a mid-reshard cell) is handled the same way:
// sleep out Retry-After and retry the same URL, which routes to the
// cell's new owner once the ring swaps.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blu/internal/blueprint"
	"blu/internal/fleet"
	"blu/internal/obs"
	"blu/internal/rng"
	"blu/internal/serve"
	"blu/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bluload:", err)
		os.Exit(1)
	}
}

// endpoint indexes the request kinds.
const (
	epInfer = iota
	epJoint
	epSchedule
	epObserve
	numEndpoints
)

var epNames = [numEndpoints]string{"Serve/infer", "Serve/joint", "Serve/schedule", "Serve/observe"}
var epPaths = [numEndpoints]string{"/v1/infer", "/v1/joint", "/v1/schedule", "/v1/observe"}

// payloadPool is the seeded request corpus: a small pool per endpoint,
// cycled by request index. The infer pool is deliberately smaller than
// typical request counts so repeats exercise the daemon's result cache.
type payloadPool struct {
	byEndpoint [numEndpoints][][]byte
	// cellQ, when populated for an endpoint, aligns with byEndpoint and
	// carries each payload's routing query ("?cell=<id>") for fleet runs.
	cellQ [numEndpoints][]string
	// binaryEp marks endpoints whose bodies are binary frames, so the
	// worker sets the matching Content-Type/Accept headers.
	binaryEp [numEndpoints]bool
	mix      string
	fleet    bool
	// seedObserve holds one observe batch per session, posted
	// synchronously before the measurement window so every session a
	// worker's infer names already exists; seedQ aligns with it in fleet
	// runs.
	seedObserve [][]byte
	seedQ       []string
}

// entryName renders an endpoint's bench-report name: Serve/* against a
// single daemon, Fleet/* through a router.
func (p *payloadPool) entryName(ep int) string {
	if p.fleet {
		return "Fleet/" + strings.TrimPrefix(epNames[ep], "Serve/")
	}
	return epNames[ep]
}

// query returns the payload's routing query suffix ("" outside fleet
// runs).
func (p *payloadPool) query(ep, k int) string {
	if p.cellQ[ep] == nil {
		return ""
	}
	return p.cellQ[ep][k]
}

// buildPool synthesizes the corpus from seed alone. Topologies are
// random hidden-terminal layouts; infer measurements are the analytic
// access distributions of a truth topology, so every infer request is
// a well-posed instance the solver can actually invert. With
// binaryInfer the infer bodies are serve's binary frames instead of
// JSON — the same requests byte-for-byte after decoding, so the two
// codecs hit identical cache/coalescing keys on the server.
func buildPool(seed uint64, binaryInfer bool, mix string) *payloadPool {
	r := rng.New(seed).Split("payloads")
	pool := &payloadPool{mix: mix}
	pool.binaryEp[epInfer] = binaryInfer && mix != "observe"
	pool.binaryEp[epObserve] = binaryInfer
	const inferPayloads, jointPayloads, schedPayloads = 8, 16, 16

	randTopo := func(r *rng.Source) *blueprint.Topology {
		n := 4 + r.Intn(6)
		topo := &blueprint.Topology{N: n}
		for h := 0; h < 1+r.Intn(2); h++ {
			size := 2 + r.Intn(2)
			var set blueprint.ClientSet
			for set.Count() < size {
				set = set.Add(r.Intn(n))
			}
			topo.HTs = append(topo.HTs, blueprint.HiddenTerminal{
				Q:       0.2 + 0.4*r.Float64(),
				Clients: set,
			})
		}
		return topo
	}

	ri := r.Split("infer")
	for k := 0; k < inferPayloads; k++ {
		topo := randTopo(ri)
		mw := serve.MeasurementsWire{N: topo.N, P: make([]float64, topo.N)}
		for i := 0; i < topo.N; i++ {
			mw.P[i] = topo.AccessProb(i)
			for j := i + 1; j < topo.N; j++ {
				mw.Pairs = append(mw.Pairs, serve.PairProb{I: i, J: j, P: topo.PairProb(i, j)})
			}
		}
		req := serve.InferRequest{
			Measurements: mw,
			Options:      serve.InferOptionsWire{Seed: ri.Uint64()},
		}
		var body []byte
		if binaryInfer {
			body, _ = serve.EncodeInferRequest(&req)
		} else {
			body, _ = json.Marshal(req)
		}
		pool.byEndpoint[epInfer] = append(pool.byEndpoint[epInfer], body)
	}

	rj := r.Split("joint")
	for k := 0; k < jointPayloads; k++ {
		topo := randTopo(rj)
		clear := []int{rj.Intn(topo.N)}
		blocked := []int{}
		if b := rj.Intn(topo.N); b != clear[0] {
			blocked = append(blocked, b)
		}
		body, _ := json.Marshal(serve.JointRequest{
			Topology: serve.TopologyToWire(topo),
			Clear:    clear,
			Blocked:  blocked,
		})
		pool.byEndpoint[epJoint] = append(pool.byEndpoint[epJoint], body)
	}

	rs := r.Split("schedule")
	for k := 0; k < schedPayloads; k++ {
		topo := randTopo(rs)
		rates := make([][]float64, topo.N)
		for i := range rates {
			rates[i] = []float64{(1 + 9*rs.Float64()) * 1e6}
		}
		body, _ := json.Marshal(serve.ScheduleRequest{
			Topology:  serve.TopologyToWire(topo),
			NumRB:     25,
			M:         2 + rs.Intn(3),
			Scheduler: [3]string{"blu", "aa", "pf"}[rs.Intn(3)],
			Rates:     rates,
		})
		pool.byEndpoint[epSchedule] = append(pool.byEndpoint[epSchedule], body)
	}

	// Observe mix: the infer pool becomes session-keyed infers (always
	// JSON — the binary codec flag moves to the observe frames) and an
	// observe pool feeds those sessions. Every body for one session
	// shares its client count, or the daemon would answer 409.
	if mix == "observe" {
		ro := r.Split("observe")
		sessions := [4]string{"load-a", "load-b", "load-c", "load-d"}
		var ns [len(sessions)]int
		for si := range ns {
			ns[si] = 4 + ro.Intn(6)
		}
		const observePayloads = 16
		for k := 0; k < observePayloads; k++ {
			si := k % len(sessions)
			req := serve.ObserveRequest{
				Session: sessions[si],
				N:       ns[si],
				// Seal every fourth batch so epochs rotate through the
				// daemon's window and digests keep moving.
				Seal: k%4 == 3,
			}
			for o := 0; o < 8; o++ {
				var ob serve.ObservationWire
				for c := 0; c < ns[si]; c++ {
					if ro.Intn(4) > 0 {
						ob.Scheduled = append(ob.Scheduled, c)
						if ro.Intn(3) > 0 {
							ob.Accessed = append(ob.Accessed, c)
						}
					}
				}
				req.Observations = append(req.Observations, ob)
			}
			var body []byte
			if binaryInfer {
				body, _ = serve.EncodeObserveRequest(&req)
			} else {
				body, _ = json.Marshal(req)
			}
			pool.byEndpoint[epObserve] = append(pool.byEndpoint[epObserve], body)
			if k < len(sessions) {
				pool.seedObserve = append(pool.seedObserve, body)
			}
		}
		pool.byEndpoint[epInfer] = pool.byEndpoint[epInfer][:0]
		for k := 0; k < inferPayloads; k++ {
			body, _ := json.Marshal(serve.InferRequest{
				Session: sessions[k%len(sessions)],
				Options: serve.InferOptionsWire{Seed: 100 + uint64(k%len(sessions))},
			})
			pool.byEndpoint[epInfer] = append(pool.byEndpoint[epInfer], body)
		}
	}
	return pool
}

// pick maps a request index onto (endpoint, payload), the deterministic
// mix. Default: 60% infer (cycling a small pool, so the cache sees
// repeats), 20% joint, 20% schedule. Observe mix: 30% observe, 30%
// session infer, 20% joint, 20% schedule — observes and session infers
// interleave on the same sessions, so digests move under in-flight
// infers and the invalidation path runs for real.
func (p *payloadPool) pick(idx int64) (int, []byte, string) {
	ep := epInfer
	switch idx % 10 {
	case 0, 1, 2:
		if p.mix == "observe" {
			ep = epObserve
		}
	case 6, 7:
		ep = epJoint
	case 8, 9:
		ep = epSchedule
	}
	bodies := p.byEndpoint[ep]
	k := int(idx/10) % len(bodies)
	return ep, bodies[k], p.query(ep, k)
}

// buildFleetPool synthesizes the fleet corpus over a cell directory:
// observe batches and session-keyed infers against each cell's
// canonical cell:<id> session (client count = the cell's member count),
// joint and schedule payloads cycled across cells. Every payload
// carries its routing query, so the whole mix flows through a blufleet
// router's proxy path.
func buildFleetPool(seed uint64, dir fleet.Directory, binaryObserve bool) *payloadPool {
	r := rng.New(seed).Split("fleet-payloads")
	pool := &payloadPool{mix: "observe", fleet: true}
	pool.binaryEp[epObserve] = binaryObserve

	randTopo := func(r *rng.Source, n int) *blueprint.Topology {
		topo := &blueprint.Topology{N: n}
		for h := 0; h < 1+r.Intn(2); h++ {
			size := 2 + r.Intn(2)
			var set blueprint.ClientSet
			for set.Count() < size {
				set = set.Add(r.Intn(n))
			}
			topo.HTs = append(topo.HTs, blueprint.HiddenTerminal{
				Q:       0.2 + 0.4*r.Float64(),
				Clients: set,
			})
		}
		return topo
	}

	const batchesPerCell = 4
	ro := r.Split("observe")
	for ci := range dir.Cells {
		cell := &dir.Cells[ci]
		q := "?cell=" + cell.ID
		n := len(cell.Members)
		rc := ro.SplitIndex("cell", ci)
		for k := 0; k < batchesPerCell; k++ {
			req := serve.ObserveRequest{
				Session: fleet.SessionName(cell.ID),
				N:       n,
				Seal:    k%2 == 1,
			}
			for o := 0; o < 8; o++ {
				var ob serve.ObservationWire
				for c := 0; c < n; c++ {
					if rc.Intn(4) > 0 {
						ob.Scheduled = append(ob.Scheduled, c)
						if rc.Intn(3) > 0 {
							ob.Accessed = append(ob.Accessed, c)
						}
					}
				}
				req.Observations = append(req.Observations, ob)
			}
			var body []byte
			if binaryObserve {
				body, _ = serve.EncodeObserveRequest(&req)
			} else {
				body, _ = json.Marshal(req)
			}
			pool.byEndpoint[epObserve] = append(pool.byEndpoint[epObserve], body)
			pool.cellQ[epObserve] = append(pool.cellQ[epObserve], q)
			if k == 0 {
				pool.seedObserve = append(pool.seedObserve, body)
				pool.seedQ = append(pool.seedQ, q)
			}
		}
		body, _ := json.Marshal(serve.InferRequest{
			Session: fleet.SessionName(cell.ID),
			Options: serve.InferOptionsWire{Seed: 200 + uint64(ci)},
		})
		pool.byEndpoint[epInfer] = append(pool.byEndpoint[epInfer], body)
		pool.cellQ[epInfer] = append(pool.cellQ[epInfer], q)
	}

	// Joint/schedule are stateless; cycle them across cells so the
	// router's proxy path sees every shard.
	rj := r.Split("joint")
	rs := r.Split("schedule")
	const statelessPayloads = 12
	for k := 0; k < statelessPayloads; k++ {
		cell := &dir.Cells[k%len(dir.Cells)]
		q := "?cell=" + cell.ID
		n := len(cell.Members)

		topo := randTopo(rj, n)
		clear := []int{rj.Intn(n)}
		blocked := []int{}
		if b := rj.Intn(n); b != clear[0] {
			blocked = append(blocked, b)
		}
		body, _ := json.Marshal(serve.JointRequest{
			Topology: serve.TopologyToWire(topo),
			Clear:    clear,
			Blocked:  blocked,
		})
		pool.byEndpoint[epJoint] = append(pool.byEndpoint[epJoint], body)
		pool.cellQ[epJoint] = append(pool.cellQ[epJoint], q)

		stopo := randTopo(rs, n)
		rates := make([][]float64, n)
		for i := range rates {
			rates[i] = []float64{(1 + 9*rs.Float64()) * 1e6}
		}
		body, _ = json.Marshal(serve.ScheduleRequest{
			Topology:  serve.TopologyToWire(stopo),
			NumRB:     25,
			M:         2 + rs.Intn(3),
			Scheduler: [3]string{"blu", "aa", "pf"}[rs.Intn(3)],
			Rates:     rates,
		})
		pool.byEndpoint[epSchedule] = append(pool.byEndpoint[epSchedule], body)
		pool.cellQ[epSchedule] = append(pool.cellQ[epSchedule], q)
	}
	return pool
}

// tally accumulates one worker's observations, merged after the run so
// the hot loop takes no locks.
type tally struct {
	latencies [numEndpoints][]float64 // milliseconds
	ok        [numEndpoints]int
	rejected  int // 429 backpressure responses received
	fenced    int // 307 reshard-fence responses received
	retried   int // backoff sleeps taken honoring Retry-After
	failed    int
	firstErr  string
}

// backoff limits for honoring Retry-After: at most three retries per
// request, never sleeping longer than the cap regardless of what the
// server advertises.
const (
	maxRetryAttempts = 3
	maxBackoff       = 2 * time.Second
	defaultBackoff   = 100 * time.Millisecond
)

// retryAfterDelay converts a 429's Retry-After header into a bounded,
// seeded-jittered sleep: the advertised seconds (or a small default
// when absent/unparsable), capped at maxBackoff, scaled by a uniform
// [0.5, 1.0) draw from the worker's own stream so backoff is
// deterministic per (seed, worker) yet staggered across the fleet.
func retryAfterDelay(header string, r *rng.Source) time.Duration {
	d := defaultBackoff
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return time.Duration((0.5 + 0.5*r.Float64()) * float64(d))
}

func run(args []string) error {
	fs := flag.NewFlagSet("bluload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target daemon address (host:port)")
	seed := fs.Uint64("seed", 1, "payload and mix seed")
	conc := fs.Int("c", 4, "concurrent closed-loop workers")
	total := fs.Int64("n", 300, "total requests (ignored when -duration is set)")
	duration := fs.Duration("duration", 0, "run for this long instead of a fixed count")
	qps := fs.Float64("qps", 0, "paced request rate (0 = unpaced)")
	mix := fs.String("mix", "default", "traffic mix: default or observe")
	cells := fs.Int("cells", 0, "fleet mode: per-cell mix over this many cells through a blufleet router (0 = single daemon)")
	codec := fs.String("codec", "json", "infer wire codec: json or binary")
	out := fs.String("o", "", "write an obs.BenchReport JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *conc < 1 {
		return fmt.Errorf("-c must be positive")
	}
	if *codec != "json" && *codec != "binary" {
		return fmt.Errorf("-codec must be json or binary, got %q", *codec)
	}
	if *mix != "default" && *mix != "observe" {
		return fmt.Errorf("-mix must be default or observe, got %q", *mix)
	}
	if *cells < 0 {
		return fmt.Errorf("-cells must be >= 0, got %d", *cells)
	}
	binaryInfer := *codec == "binary"
	base := "http://" + *addr

	// Liveness gate before spending the measurement window. A fleet
	// router's /healthz carries the same "status" field and reports
	// "ok" only when every shard answers, so the gate covers the whole
	// fleet in -cells mode.
	if err := checkHealth(base); err != nil {
		return err
	}

	var pool *payloadPool
	if *cells > 0 {
		dir, err := fleet.DefaultDirectory(*cells, *seed)
		if err != nil {
			return fmt.Errorf("-cells %d: %w", *cells, err)
		}
		pool = buildFleetPool(*seed, dir, binaryInfer)
	} else {
		pool = buildPool(*seed, binaryInfer, *mix)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// Observe mix: mint every session synchronously before workers
	// start, so no concurrent session infer races its creation to a 404.
	for i, body := range pool.seedObserve {
		q := ""
		if i < len(pool.seedQ) {
			q = pool.seedQ[i]
		}
		if err := postSeed(client, base+epPaths[epObserve]+q, body, pool.binaryEp[epObserve]); err != nil {
			return fmt.Errorf("session pre-seed %d: %w", i, err)
		}
	}
	var next atomic.Int64
	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
		*total = 1 << 62
	}

	tallies := make([]tally, *conc)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int, tl *tally) {
			defer wg.Done()
			// Each worker's backoff jitter is its own seeded stream, so a
			// rerun with the same (seed, c) sleeps identically.
			br := rng.New(*seed).SplitIndex("backoff", w)
			for {
				idx := next.Add(1) - 1
				if idx >= *total {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if *qps > 0 {
					// Pace against the global schedule: request idx is due at
					// start + idx/qps.
					due := start.Add(time.Duration(float64(idx) / *qps * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				ep, body, cellQ := pool.pick(idx)
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					hreq, _ := http.NewRequest(http.MethodPost, base+epPaths[ep]+cellQ, bytes.NewReader(body))
					if pool.binaryEp[ep] {
						hreq.Header.Set("Content-Type", serve.ContentTypeBinary)
						hreq.Header.Set("Accept", serve.ContentTypeBinary)
					} else {
						hreq.Header.Set("Content-Type", "application/json")
					}
					resp, err := client.Do(hreq)
					lat := float64(time.Since(t0)) / float64(time.Millisecond)
					if err != nil {
						tl.failed++
						if tl.firstErr == "" {
							tl.firstErr = err.Error()
						}
						break
					}
					rbody, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						tl.ok[ep]++
						tl.latencies[ep] = append(tl.latencies[ep], lat)
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusTemporaryRedirect {
						// Honor the shed: sleep out the advertised horizon and
						// retry the same request, up to the attempt cap. Past
						// the window deadline the rejection stands — the run is
						// over. A 307 is the fleet router fencing a mid-reshard
						// cell; retrying the same URL reaches the new owner
						// after the ring swap (no Location is sent, so the
						// client never follows it automatically).
						if resp.StatusCode == http.StatusTemporaryRedirect {
							tl.fenced++
						} else {
							tl.rejected++
						}
						past := !deadline.IsZero() && time.Now().After(deadline)
						if attempt >= maxRetryAttempts || past {
							break
						}
						tl.retried++
						time.Sleep(retryAfterDelay(resp.Header.Get("Retry-After"), br))
						continue
					}
					tl.failed++
					if tl.firstErr == "" {
						tl.firstErr = fmt.Sprintf("%s: %d %s", epPaths[ep], resp.StatusCode, bytes.TrimSpace(rbody))
					}
					break
				}
			}
		}(w, &tallies[w])
	}
	wg.Wait()
	wall := time.Since(start)

	var merged tally
	for i := range tallies {
		tl := &tallies[i]
		for ep := 0; ep < numEndpoints; ep++ {
			merged.ok[ep] += tl.ok[ep]
			merged.latencies[ep] = append(merged.latencies[ep], tl.latencies[ep]...)
		}
		merged.rejected += tl.rejected
		merged.fenced += tl.fenced
		merged.retried += tl.retried
		merged.failed += tl.failed
		if merged.firstErr == "" {
			merged.firstErr = tl.firstErr
		}
	}
	// Concatenation order above follows worker index, not completion
	// time; sort so percentile output is stable run to run.
	for ep := 0; ep < numEndpoints; ep++ {
		sort.Float64s(merged.latencies[ep])
	}

	totalOK := 0
	for ep := 0; ep < numEndpoints; ep++ {
		totalOK += merged.ok[ep]
	}
	fmt.Printf("bluload: %d ok, %d rejected (429), %d fenced (307), %d retried, %d failed in %v (%.1f req/s)\n",
		totalOK, merged.rejected, merged.fenced, merged.retried, merged.failed, wall.Round(time.Millisecond),
		float64(totalOK)/wall.Seconds())

	report := &obs.BenchReport{
		GoVersion:   runtime.Version(),
		GitDescribe: obs.GitDescribe(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        fmt.Sprintf("bluload seed=%d c=%d mix=%s cells=%d codec=%s against %s", *seed, *conc, *mix, *cells, *codec, *addr),
	}
	for ep := 0; ep < numEndpoints; ep++ {
		lats := merged.latencies[ep]
		if len(lats) == 0 {
			if len(pool.byEndpoint[ep]) == 0 {
				continue // endpoint not in this mix
			}
			fmt.Printf("  %-16s no completed requests\n", pool.entryName(ep))
			continue
		}
		var sum float64
		for _, l := range lats {
			sum += l
		}
		mean := sum / float64(len(lats))
		p50, _ := stats.Percentile(lats, 50)
		p90, _ := stats.Percentile(lats, 90)
		p99, _ := stats.Percentile(lats, 99)
		fmt.Printf("  %-16s n=%-5d mean=%.2fms p50=%.2fms p90=%.2fms p99=%.2fms\n",
			pool.entryName(ep), len(lats), mean, p50, p90, p99)
		report.Entries = append(report.Entries, obs.BenchEntry{
			Name:       pool.entryName(ep),
			Iterations: len(lats),
			NsPerOp:    int64(mean * float64(time.Millisecond)),
			MsPerOp:    mean,
		})
	}

	// Embed the server's own metric snapshot: the serve_cache_* and
	// queue counters live in the daemon process, and this is how they
	// reach the bench file for ci.sh to assert on.
	if snap, err := fetchMetrics(base); err != nil {
		fmt.Fprintf(os.Stderr, "bluload: metrics fetch failed: %v\n", err)
	} else {
		report.Metrics = *snap
	}

	if *out != "" {
		if err := report.Validate(); err != nil {
			return fmt.Errorf("report invalid: %w", err)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bluload: report written to %s\n", *out)
	}

	if merged.failed > 0 {
		return fmt.Errorf("%d requests failed (first: %s)", merged.failed, merged.firstErr)
	}
	if totalOK == 0 {
		return fmt.Errorf("no requests completed")
	}
	return nil
}

// postSeed issues one synchronous observe outside the measurement
// window; anything but 200 aborts the run before workers launch.
func postSeed(client *http.Client, url string, body []byte, binary bool) error {
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if binary {
		hreq.Header.Set("Content-Type", serve.ContentTypeBinary)
	} else {
		hreq.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rbody, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%d %s", resp.StatusCode, bytes.TrimSpace(rbody))
	}
	return nil
}

func checkHealth(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
		return fmt.Errorf("daemon unhealthy: status %q (%v)", h.Status, err)
	}
	return nil
}

func fetchMetrics(base string) (*obs.Snapshot, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
