// Command blubench records the repo's performance baseline: it runs
// the core inference micro-benchmarks (deterministic multi-start
// inference and the MCMC baseline) across parallelism settings plus
// the per-subframe scheduler kernels via testing.Benchmark and writes
// the ns/op table, together with the parallel-vs-sequential speedups,
// to a JSON file in the obs.BenchReport schema.
//
// Usage:
//
//	blubench [-o BENCH_baseline.json] [-sched] [-metrics file] [-pprof addr]
//
// With -sched only the scheduler, wire-codec, warm-start, and
// /v1/observe sections run — a seconds-scale subset CI uses as its
// kernel-smoke gate (the full inference sweep takes minutes). The determinism test suite
// guarantees every parallelism setting returns the identical topology,
// so each speedup line is a pure wall-clock comparison of the same
// computation.
//
// The obs layer is enabled for the run, so the written baseline embeds
// the metric snapshot (inference starts/iterations, MCMC acceptance,
// scheduler cache hit/miss/reset counts) alongside the timings — the
// BENCH file records what work the numbers measured, not just how long
// it took.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"blu"
	"blu/internal/blueprint"
	"blu/internal/mcmc"
	"blu/internal/obs"
	"blu/internal/rng"
	"blu/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blubench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blubench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_baseline.json", "output file")
	schedOnly := fs.Bool("sched", false, "run only the scheduler-kernel and codec sections (fast; CI smoke)")
	metrics := fs.String("metrics", "", "also write a JSON run manifest to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "blubench: pprof on http://%s/debug/pprof/\n", addr)
	}

	// The baseline always embeds the metric snapshot; reset first so the
	// counts describe exactly this benchmark run.
	obs.Enable()
	obs.Reset()
	var man *obs.Manifest
	if *metrics != "" {
		man = obs.NewManifest("blubench", args)
		man.Config = map[string]any{"out": *out, "sched": *schedOnly}
	}

	base := &obs.BenchReport{
		GoVersion:   runtime.Version(),
		GitDescribe: obs.GitDescribe(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Speedups:    map[string]float64{},
	}
	if base.GOMAXPROCS == 1 {
		base.Note = "single-CPU machine: P>1 timeslices on one core, so the " +
			"speedup column measures overhead, not scaling; re-run on a " +
			"multi-core host for wall-clock numbers"
		fmt.Fprintln(os.Stderr, "blubench: GOMAXPROCS=1 —", base.Note)
	}

	record := func(name string, fn func(i int) error) obs.BenchEntry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(i); err != nil {
					b.Fatal(err)
				}
			}
		})
		e := obs.BenchEntry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		base.Entries = append(base.Entries, e)
		fmt.Printf("%-28s %12d ns/op  %9.2f ms/op  %6d allocs/op  (%d iters)\n",
			name, e.NsPerOp, e.MsPerOp, e.AllocsPerOp, e.Iterations)
		return e
	}

	if !*schedOnly {
		// Deterministic multi-start inference across parallelism settings.
		// P=1 is the sequential baseline; P=0 uses every core.
		for _, n := range []int{8, 16, 24} {
			truth := randomTopo(n, n+n/2, 7)
			meas := truth.Measure()
			perSetting := map[int]int64{}
			for _, par := range []int{1, 2, 4, 0} {
				par := par
				e := record(inferLabel(n, par), func(i int) error {
					_, err := blueprint.Infer(meas, blueprint.InferOptions{Seed: uint64(i), Parallelism: par})
					return err
				})
				perSetting[par] = e.NsPerOp
			}
			for _, par := range []int{2, 4, 0} {
				if perSetting[par] > 0 {
					base.Speedups[inferLabel(n, par)+"_vs_P=1"] =
						float64(perSetting[1]) / float64(perSetting[par])
				}
			}
		}

		// MCMC baseline: 4 chains sequential vs parallel.
		{
			truth := randomTopo(12, 18, 7)
			meas := truth.Measure()
			perSetting := map[int]int64{}
			for _, par := range []int{1, 4} {
				par := par
				e := record(fmt.Sprintf("MCMC/N=12/Chains=4/P=%d", par), func(i int) error {
					_, err := mcmc.Infer(meas, mcmc.Options{Seed: uint64(i), Chains: 4, Parallelism: par})
					return err
				})
				perSetting[par] = e.NsPerOp
			}
			if perSetting[4] > 0 {
				base.Speedups["MCMC/N=12/Chains=4/P=4_vs_P=1"] =
					float64(perSetting[1]) / float64(perSetting[4])
			}
		}
	}

	if err := recordSchedulers(record); err != nil {
		return err
	}
	if err := recordCodecs(record); err != nil {
		return err
	}
	if err := recordWarmStart(record, base); err != nil {
		return err
	}
	if err := recordObserve(record); err != nil {
		return err
	}

	base.Metrics = obs.Snap()
	if err := base.Validate(); err != nil {
		return fmt.Errorf("self-check: %w", err)
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if len(base.Speedups) > 0 {
		fmt.Printf("\nspeedups:\n")
		keys := make([]string, 0, len(base.Speedups))
		for k := range base.Speedups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-32s %.2fx\n", k, base.Speedups[k])
		}
	}
	fmt.Printf("wrote %s\n", *out)
	if man != nil {
		if err := man.Write(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "blubench: wrote manifest %s\n", *metrics)
	}
	return nil
}

// recordSchedulers benchmarks one full subframe scheduling decision for
// each of the paper's three schedulers on the same Fig-15 working-point
// cell (16 UEs, 24 hidden terminals, M=2), exercising the steady-state
// allocation-free kernels: scratch reuse, the flat group-distribution
// cache, and the joint-calculator memo.
func recordSchedulers(record func(string, func(int) error) obs.BenchEntry) error {
	const subframes = 100
	cell, err := blu.NewCell(blu.CellConfig{
		Scenario:  blu.NewTestbedScenario(16, 24, 5),
		M:         2,
		Subframes: subframes,
		Seed:      9,
	})
	if err != nil {
		return err
	}
	env := cell.Env()
	calc := blu.NewCalculator(cell.GroundTruth())

	pf, err := blu.NewPF(env)
	if err != nil {
		return err
	}
	aa, err := blu.NewAccessAware(env, calc)
	if err != nil {
		return err
	}
	spec, err := blu.NewSpeculative(env, calc)
	if err != nil {
		return err
	}
	for _, sc := range []struct {
		name string
		s    blu.Scheduler
	}{
		{"Schedule/PF", pf},
		{"Schedule/AA", aa},
		{"Schedule/BLU", spec},
	} {
		sc := sc
		record(sc.name, func(i int) error {
			if sch := sc.s.Schedule(i % subframes); len(sch.RB) == 0 {
				return fmt.Errorf("%s: empty schedule", sc.name)
			}
			return nil
		})
	}
	return nil
}

// recordCodecs measures the infer endpoint's wire tax for each codec:
// one op is a full codec round trip — encode request, decode request,
// encode response, decode response — on a 16-client payload with a
// dense pair list, the shape bluload drives at the daemon. The
// Codec/JSON vs Codec/Binary ratio is the serialization share a binary
// client saves; it runs in the -sched fast section so CI tracks it.
func recordCodecs(record func(string, func(int) error) obs.BenchEntry) error {
	truth := randomTopo(16, 8, 11)
	mw := serve.MeasurementsWire{N: truth.N, P: make([]float64, truth.N)}
	for i := 0; i < truth.N; i++ {
		mw.P[i] = truth.AccessProb(i)
		for j := i + 1; j < truth.N; j++ {
			mw.Pairs = append(mw.Pairs, serve.PairProb{I: i, J: j, P: truth.PairProb(i, j)})
		}
	}
	req := &serve.InferRequest{Measurements: mw, Options: serve.InferOptionsWire{Seed: 11}}
	resp := &serve.InferResponse{
		Topology:     serve.TopologyToWire(truth),
		Violation:    0.004,
		MaxViolation: 0.011,
		Converged:    true,
		Starts:       25,
		Iterations:   900,
	}

	record("Codec/JSON", func(int) error {
		reqBody, err := json.Marshal(req)
		if err != nil {
			return err
		}
		var r serve.InferRequest
		if err := json.Unmarshal(reqBody, &r); err != nil {
			return err
		}
		respBody, err := json.Marshal(resp)
		if err != nil {
			return err
		}
		var p serve.InferResponse
		return json.Unmarshal(respBody, &p)
	})
	record("Codec/Binary", func(int) error {
		reqBody, err := serve.EncodeInferRequest(req)
		if err != nil {
			return err
		}
		if _, err := serve.DecodeInferRequest(reqBody); err != nil {
			return err
		}
		respBody, err := serve.EncodeInferResponse(resp)
		if err != nil {
			return err
		}
		_, err = serve.DecodeInferResponse(respBody)
		return err
	})
	return nil
}

// recordWarmStart measures the §3.7 refresh economics: the same
// drifted instance solved cold (full multi-start fan-out) and solved
// warm from the pre-drift blueprint, where one repair chain probes the
// seed and the fan-out is skipped once it converges. The speedup line
// is the refresh discount the daemon's session infers ride on. The
// drift exceeds the solver tolerance so the repair must actually move —
// a verbatim warm hit would measure only the residual check.
func recordWarmStart(record func(string, func(int) error) obs.BenchEntry, base *obs.BenchReport) error {
	prev := randomTopo(12, 6, 7)
	drifted := &blueprint.Topology{N: prev.N, HTs: append([]blueprint.HiddenTerminal(nil), prev.HTs...)}
	for k := range drifted.HTs {
		drifted.HTs[k].Q += 0.03
	}
	meas := drifted.Measure()
	cold := record("Infer/WarmStartCold", func(int) error {
		_, err := blueprint.Infer(meas, blueprint.InferOptions{Seed: 21})
		return err
	})
	warm := record("Infer/WarmStart", func(int) error {
		_, err := blueprint.Infer(meas, blueprint.InferOptions{Seed: 21, WarmStart: prev})
		return err
	})
	if warm.NsPerOp > 0 {
		base.Speedups["Infer/WarmStart_vs_cold"] = float64(cold.NsPerOp) / float64(warm.NsPerOp)
	}
	return nil
}

// recordObserve measures one /v1/observe round trip — HTTP transport,
// decode, validation, session fold, digest — against an in-process
// daemon: the per-batch ingestion cost a streaming client pays.
func recordObserve(record func(string, func(int) error) obs.BenchEntry) error {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	req := serve.ObserveRequest{Session: "bench", N: 8}
	r := rng.New(17).Split("observe-bench")
	for o := 0; o < 16; o++ {
		var ob serve.ObservationWire
		for c := 0; c < req.N; c++ {
			if r.Intn(4) > 0 {
				ob.Scheduled = append(ob.Scheduled, c)
				if r.Intn(3) > 0 {
					ob.Accessed = append(ob.Accessed, c)
				}
			}
		}
		req.Observations = append(req.Observations, ob)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := ts.Client()
	return checkBench(record("Serve/Observe", func(int) error {
		resp, err := client.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("observe: status %d", resp.StatusCode)
		}
		return nil
	}))
}

// checkBench guards against a benchmark that silently measured nothing.
func checkBench(e obs.BenchEntry) error {
	if e.NsPerOp <= 0 {
		return fmt.Errorf("%s: implausible %d ns/op", e.Name, e.NsPerOp)
	}
	return nil
}

func inferLabel(n, par int) string {
	if par == 0 {
		return fmt.Sprintf("Infer/N=%d/P=max", n)
	}
	return fmt.Sprintf("Infer/N=%d/P=%d", n, par)
}

// randomTopo mirrors the bench_test.go generator so blubench measures
// the same instances the `go test -bench` suite does.
func randomTopo(n, h int, seed uint64) *blueprint.Topology {
	r := rng.New(seed)
	topo := &blueprint.Topology{N: n}
	for k := 0; k < h; k++ {
		var set blueprint.ClientSet
		for i := 0; i < n; i++ {
			if r.Bool(0.25) {
				set = set.Add(i)
			}
		}
		if set.Empty() {
			set = set.Add(r.Intn(n))
		}
		topo.HTs = append(topo.HTs, blueprint.HiddenTerminal{
			Q:       0.1 + 0.4*r.Float64(),
			Clients: set,
		})
	}
	return topo.Normalize()
}
