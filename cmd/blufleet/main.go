// Command blufleet runs the multi-cell controller tier (DESIGN.md §16):
// consistent-hash routed blud-style shards with periodic cross-cell
// blueprint exchange, behind a thin router that forwards
// /v1/{infer,observe,schedule,joint} by cell id and serves the merged
// global interference map at GET /v1/fleet/map.
//
// The fleet's cell directory is derived from (-cells, -seed) alone via
// the shared multi-cell scenario generator, so every component —
// shards, routers, and bluload -cells — agrees on cell membership
// without any shared files.
//
// Usage:
//
//	blufleet [flags]
//
// Modes (-mode):
//
//	all     (default) all-in-one: -shards shards plus one router in this
//	        process, shards on free loopback ports, peers pre-wired.
//	        The router binds -addr.
//	shard   one shard process. Requires -name (must be one of the
//	        canonical shard-0..shard-(K-1) names for -shards K) and, for
//	        cross-shard exchange, a -peer name=url flag per peer.
//	router  one router process over externally started shards, given as
//	        -shard name=url flags. /metrics aggregates the shards'
//	        snapshots into fleet-wide totals.
//
// Flags:
//
//	-mode m      all | shard | router (default all)
//	-cells n     fleet cell count (default 3)
//	-seed n      directory seed (default 1; must match across components)
//	-shards k    fleet shard count (default 3)
//	-addr a      listen address (router in all/router modes, the shard in
//	             shard mode; ":0" picks a free port — bound addresses are
//	             printed as "blufleet: ROLE listening on ADDR")
//	-name s      this shard's ring identity (shard mode)
//	-peer n=u    peer shard base URL, repeatable (shard mode)
//	-shard n=u   shard base URL, repeatable (router mode)
//	-state dir   durable session state: in all mode each shard persists
//	             under dir/<name>; in shard mode the directory is used
//	             as-is (kill -9 restarts recover digest-identically)
//	-exchange d  blueprint-exchange interval (default 2s; 0 disables)
//	-replicas n  ring vnodes per shard (0 = default 128)
//	-workers n   per-shard compute pool size (0 = all cores)
//	-queue n     per-shard work-queue depth (default 64)
//	-snapshot-interval d  periodic snapshot cadence (default 30s;
//	             meaningful with -state)
//	-wal-sync d  WAL group-commit fsync interval (default 25ms;
//	             meaningful with -state)
//
// Scripted consumers (ci.sh fleet-smoke) parse the exact line
// "blufleet: router listening on ADDR" (and the shard equivalent) to
// learn bound ports. SIGTERM/SIGINT drains gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"blu/internal/fleet"
	"blu/internal/obs"
	"blu/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blufleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blufleet", flag.ContinueOnError)
	mode := fs.String("mode", "all", "all | shard | router")
	cells := fs.Int("cells", 3, "fleet cell count")
	seed := fs.Uint64("seed", 1, "directory seed (must match across components)")
	shards := fs.Int("shards", 3, "fleet shard count")
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	name := fs.String("name", "", "this shard's ring identity (shard mode)")
	stateDir := fs.String("state", "", "durable session state directory")
	exchange := fs.Duration("exchange", 2*time.Second, "blueprint-exchange interval (0 disables)")
	replicas := fs.Int("replicas", 0, "ring vnodes per shard (0 = default)")
	workers := fs.Int("workers", 0, "per-shard compute pool size (0 = all cores)")
	queue := fs.Int("queue", 64, "per-shard work-queue depth")
	snapInterval := fs.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (requires -state)")
	walSync := fs.Duration("wal-sync", 25*time.Millisecond, "WAL group-commit fsync interval (requires -state)")
	peers := map[string]string{}
	fs.Func("peer", "peer shard as name=url, repeatable (shard mode)", kvInto(peers))
	shardURLs := map[string]string{}
	fs.Func("shard", "shard as name=url, repeatable (router mode)", kvInto(shardURLs))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	switch {
	case *cells < 1:
		return fmt.Errorf("-cells must be >= 1, got %d", *cells)
	case *shards < 1:
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	case *exchange < 0:
		return fmt.Errorf("-exchange must be >= 0, got %v", *exchange)
	case *queue < 1:
		return fmt.Errorf("-queue must be >= 1, got %d", *queue)
	case *snapInterval <= 0:
		return fmt.Errorf("-snapshot-interval must be positive, got %v", *snapInterval)
	case *walSync <= 0:
		return fmt.Errorf("-wal-sync must be positive, got %v", *walSync)
	}

	dir, err := fleet.DefaultDirectory(*cells, *seed)
	if err != nil {
		return err
	}
	serveCfg := serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		SnapshotInterval: *snapInterval,
		WALSyncInterval:  *walSync,
		Tool:             "blufleet",
		Args:             args,
	}

	// The fleet is the metrics producer — routed/exchange counters only
	// mean something when recording is on.
	obs.Enable()

	switch *mode {
	case "all":
		return runAll(dir, *shards, *replicas, *addr, *stateDir, *exchange, serveCfg)
	case "shard":
		return runShard(dir, *name, *shards, *replicas, *addr, *stateDir, *exchange, peers, serveCfg)
	case "router":
		return runRouter(dir, *replicas, *addr, shardURLs)
	default:
		return fmt.Errorf("-mode must be all, shard, or router, got %q", *mode)
	}
}

// kvInto parses a repeatable "name=url" flag into dst.
func kvInto(dst map[string]string) func(string) error {
	return func(v string) error {
		k, u, ok := strings.Cut(v, "=")
		if !ok || k == "" || u == "" {
			return fmt.Errorf("want name=url, got %q", v)
		}
		dst[k] = u
		return nil
	}
}

func runAll(dir fleet.Directory, shards, replicas int, addr, stateDir string, exchange time.Duration, serveCfg serve.Config) error {
	l, err := fleet.StartLocal(fleet.LocalConfig{
		Shards:           shards,
		Directory:        dir,
		Replicas:         replicas,
		StateDir:         stateDir,
		Serve:            serveCfg,
		ExchangeInterval: exchange,
		RouterAddr:       addr,
	})
	if err != nil {
		return err
	}
	for _, sh := range l.Shards {
		fmt.Printf("blufleet: shard %s listening on %s (cells: %s)\n",
			sh.Name(), strings.TrimPrefix(l.ShardAddrs[sh.Name()], "http://"),
			strings.Join(sh.OwnedCells(), " "))
	}
	fmt.Printf("blufleet: router listening on %s\n", strings.TrimPrefix(l.RouterAddr, "http://"))
	waitSignal()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return l.Drain(ctx)
}

func runShard(dir fleet.Directory, name string, shards, replicas int, addr, stateDir string, exchange time.Duration, peers map[string]string, serveCfg serve.Config) error {
	if name == "" {
		return fmt.Errorf("-mode shard requires -name")
	}
	names := make([]string, shards)
	for i := range names {
		names[i] = fleet.ShardName(i)
	}
	if stateDir != "" {
		if err := os.MkdirAll(filepath.Clean(stateDir), 0o755); err != nil {
			return fmt.Errorf("-state %s: %w", stateDir, err)
		}
		serveCfg.StateDir = stateDir
	}
	serveCfg.Tool = "blufleet-shard"
	sh, recovered, err := fleet.NewShard(fleet.ShardConfig{
		Name:             name,
		ShardNames:       names,
		Replicas:         replicas,
		Directory:        dir,
		Peers:            peers,
		Serve:            serveCfg,
		ExchangeInterval: exchange,
	})
	if err != nil {
		return err
	}
	if stateDir != "" && recovered != nil {
		fmt.Fprintf(os.Stderr,
			"blufleet: shard %s recovered %d snapshot sessions + %d WAL records from %s (%d v1 artifacts migrated)\n",
			name, recovered.SnapshotRecords, recovered.WALReplayed, stateDir, recovered.Migrated)
	}
	bound, err := sh.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("blufleet: shard %s listening on %s (cells: %s)\n",
		name, bound, strings.Join(sh.OwnedCells(), " "))
	waitSignal()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return sh.Drain(ctx)
}

func runRouter(dir fleet.Directory, replicas int, addr string, shardURLs map[string]string) error {
	if len(shardURLs) == 0 {
		return fmt.Errorf("-mode router requires at least one -shard name=url")
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Shards:    shardURLs,
		Replicas:  replicas,
		Directory: dir,
	})
	if err != nil {
		return err
	}
	bound, err := rt.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("blufleet: router listening on %s\n", bound)
	waitSignal()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return rt.Close(ctx)
}

func waitSignal() {
	sigch := make(chan os.Signal, 1)
	signal.Notify(sigch, syscall.SIGTERM, os.Interrupt)
	sig := <-sigch
	signal.Stop(sigch)
	fmt.Fprintf(os.Stderr, "blufleet: %s, draining\n", sig)
}
