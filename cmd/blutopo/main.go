// Command blutopo infers the hidden-terminal interference blueprint
// from a trace file and scores it against the trace's ground truth.
//
// Usage:
//
//	blutopo [-seed n] [-tol f] [-parallel n] [-mcmc] [-chains n]
//	        [-metrics file] [-pprof addr] trace.json
//
// The tool replays the trace, estimates the pair-wise client access
// distributions from the access outcomes, runs BLU's deterministic
// inference (and optionally the MCMC baseline), and prints both
// topologies with the exact-edge-set accuracy metric of Section 4.2.2.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blu/internal/blueprint"
	"blu/internal/mcmc"
	"blu/internal/netsim"
	"blu/internal/obs"
	"blu/internal/sim"
	"blu/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blutopo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blutopo", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	tol := fs.Float64("tol", 0.03, "constraint tolerance (−log domain)")
	par := fs.Int("parallel", 0, "worker goroutines for multi-start inference and MCMC chains (0 = all cores, 1 = sequential)")
	runMCMC := fs.Bool("mcmc", false, "also run the MCMC baseline")
	chains := fs.Int("chains", 1, "independent MCMC chains")
	metrics := fs.String("metrics", "", "write a JSON run manifest to this file (enables metric recording)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: blutopo [flags] <trace.json>")
	}
	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "blutopo: pprof on http://%s/debug/pprof/\n", addr)
	}
	var man *obs.Manifest
	if *metrics != "" {
		obs.Enable()
		man = obs.NewManifest("blutopo", args)
		man.Seed = *seed
		man.Config = map[string]any{
			"trace":    fs.Arg(0),
			"tol":      *tol,
			"parallel": *par,
			"mcmc":     *runMCMC,
			"chains":   *chains,
		}
	}
	phase := func(name, detail string, since time.Time) {
		if man != nil {
			man.AddPhase(name, detail, time.Since(since))
		}
	}
	replayStart := time.Now()
	tr, err := trace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	cell, err := sim.NewFromTrace(tr, sim.ReplayConfig{})
	if err != nil {
		return err
	}
	meas := netsim.MeasureFromMasks(cell)
	phase("replay", fs.Arg(0), replayStart)
	truth := cell.GroundTruth()
	fmt.Printf("clients: %d, measured over %d subframes\n", tr.NumUE, cell.Subframes())
	fmt.Printf("ground truth:     %v\n", truth)

	start := time.Now()
	inf, err := blueprint.Infer(meas, blueprint.InferOptions{Seed: *seed, Tolerance: *tol, Parallelism: *par})
	if err != nil {
		return err
	}
	phase("infer", "deterministic constraint repair", start)
	fmt.Printf("blueprint (BLU):  %v\n", inf.Topology)
	fmt.Printf("  accuracy=%.3f violation=%.4f converged=%v iters=%d time=%.1fms\n",
		blueprint.Accuracy(truth, inf.Topology), inf.Violation, inf.Converged,
		inf.Iterations, float64(time.Since(start).Microseconds())/1000)

	if *runMCMC {
		start = time.Now()
		mc, err := mcmc.Infer(meas, mcmc.Options{Seed: *seed, Chains: *chains, Parallelism: *par})
		if err != nil {
			return err
		}
		phase("mcmc", fmt.Sprintf("%d chains", mc.Chains), start)
		fmt.Printf("blueprint (MCMC): %v\n", mc.Topology)
		fmt.Printf("  accuracy=%.3f violation=%.4f accepted=%d/%d chains=%d best=%d time=%.1fms\n",
			blueprint.Accuracy(truth, mc.Topology), mc.Violation, mc.Accepted,
			mc.Iterations, mc.Chains, mc.BestChain, float64(time.Since(start).Microseconds())/1000)
	}
	if man != nil {
		if err := man.Write(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "blutopo: wrote manifest %s\n", *metrics)
	}
	return nil
}
