// Command blumanifest validates the JSON artifacts the tooling writes:
// run manifests from blusim/blutopo/blubench (-metrics) and BENCH
// reports from blubench (-o). CI uses it to gate on artifact
// integrity: the file must parse, survive a marshal → parse round-trip
// unchanged, pass the obs invariants, and — when -require /
// -require-entry is given — carry the named counters or benchmark
// entries.
//
// Usage:
//
//	blumanifest [-require counter,counter,...] manifest.json
//	blumanifest -bench [-require-entry name,name,...] bench.json
//
// Exit status is nonzero on any failure, with the reason on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"blu/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blumanifest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blumanifest", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated counters that must be present and nonzero")
	bench := fs.Bool("bench", false, "validate an obs.BenchReport instead of a run manifest")
	requireEntry := fs.String("require-entry", "", "comma-separated bench entries that must be present (implies -bench)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: blumanifest [-bench] [-require a,b,c] [-require-entry a,b,c] <file.json>")
	}
	path := fs.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if *bench || *requireEntry != "" {
		return checkBench(path, data, splitList(*requireEntry), splitList(*require))
	}
	return checkManifest(path, data, splitList(*require))
}

func checkManifest(path string, data []byte, required []string) error {
	var man obs.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := man.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	// Round-trip: re-marshal the parsed manifest and parse it again; the
	// two in-memory forms must agree, proving no field is lost or
	// mangled by the schema (e.g. a numeric type that truncates).
	again, err := json.Marshal(&man)
	if err != nil {
		return err
	}
	var man2 obs.Manifest
	if err := json.Unmarshal(again, &man2); err != nil {
		return fmt.Errorf("%s: re-parse: %w", path, err)
	}
	if !reflect.DeepEqual(man, man2) {
		return fmt.Errorf("%s: manifest does not survive a JSON round-trip", path)
	}

	if err := requireCounters(path, man.Metrics.Counters, required); err != nil {
		return err
	}

	fmt.Printf("%s: ok (tool=%s phases=%d counters=%d)\n",
		path, man.Tool, len(man.Phases), len(man.Metrics.Counters))
	return nil
}

// checkBench validates a blubench BENCH report the same way: parse,
// invariants, round-trip, then presence of the required entries (and,
// optionally, required nonzero counters in the embedded snapshot).
func checkBench(path string, data []byte, entries, counters []string) error {
	var rep obs.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	again, err := json.Marshal(&rep)
	if err != nil {
		return err
	}
	var rep2 obs.BenchReport
	if err := json.Unmarshal(again, &rep2); err != nil {
		return fmt.Errorf("%s: re-parse: %w", path, err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		return fmt.Errorf("%s: bench report does not survive a JSON round-trip", path)
	}

	for _, name := range entries {
		if rep.Entry(name) == nil {
			return fmt.Errorf("%s: required bench entry %q missing", path, name)
		}
	}
	if err := requireCounters(path, rep.Metrics.Counters, counters); err != nil {
		return err
	}

	fmt.Printf("%s: ok (bench entries=%d speedups=%d counters=%d)\n",
		path, len(rep.Entries), len(rep.Speedups), len(rep.Metrics.Counters))
	return nil
}

func requireCounters(path string, got map[string]int64, required []string) error {
	for _, name := range required {
		v, ok := got[name]
		if !ok {
			return fmt.Errorf("%s: required counter %q missing from snapshot", path, name)
		}
		if v == 0 {
			return fmt.Errorf("%s: required counter %q is zero", path, name)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
