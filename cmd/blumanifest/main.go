// Command blumanifest validates a JSON run manifest written by
// blusim/blutopo/blubench via their -metrics flag. CI uses it to gate
// on manifest integrity: the file must parse, survive a marshal →
// parse round-trip unchanged, pass the obs.Manifest invariants, and —
// when -require is given — carry nonzero values for the named
// counters.
//
// Usage:
//
//	blumanifest [-require counter,counter,...] manifest.json
//
// Exit status is nonzero on any failure, with the reason on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"blu/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blumanifest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blumanifest", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated counters that must be present and nonzero")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: blumanifest [-require a,b,c] <manifest.json>")
	}
	path := fs.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var man obs.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := man.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	// Round-trip: re-marshal the parsed manifest and parse it again; the
	// two in-memory forms must agree, proving no field is lost or
	// mangled by the schema (e.g. a numeric type that truncates).
	again, err := json.Marshal(&man)
	if err != nil {
		return err
	}
	var man2 obs.Manifest
	if err := json.Unmarshal(again, &man2); err != nil {
		return fmt.Errorf("%s: re-parse: %w", path, err)
	}
	if !reflect.DeepEqual(man, man2) {
		return fmt.Errorf("%s: manifest does not survive a JSON round-trip", path)
	}

	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		v, ok := man.Metrics.Counters[name]
		if !ok {
			return fmt.Errorf("%s: required counter %q missing from snapshot", path, name)
		}
		if v == 0 {
			return fmt.Errorf("%s: required counter %q is zero", path, name)
		}
	}

	fmt.Printf("%s: ok (tool=%s phases=%d counters=%d)\n",
		path, man.Tool, len(man.Phases), len(man.Metrics.Counters))
	return nil
}
