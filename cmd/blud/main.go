// Command blud serves the BLU controller over HTTP/JSON: topology
// inference (POST /v1/infer), streaming access-outcome ingestion
// (POST /v1/observe), joint access distributions (POST /v1/joint), and
// subframe scheduling (POST /v1/schedule), plus /healthz and a
// /metrics snapshot of the obs registry.
//
// /v1/observe folds per-subframe access outcomes into a bounded
// windowed estimator keyed by a session (topology) id; an infer naming
// the session instead of carrying measurements inline is solved from
// the session's live estimate, warm-started from its previous
// blueprint, and its cached result is invalidated exactly when the
// session's measurement digest moves.
//
// The infer and observe endpoints also speak a compact length-prefixed
// binary codec: send the request with
// "Content-Type: application/x-blu-binary" and/or ask for a binary
// response via the Accept header (see internal/serve/codec.go for the
// frame spec; bluload -codec binary drives it). Errors are always
// JSON.
//
// Usage:
//
//	blud [flags]
//
// Flags:
//
//	-addr a          listen address (default 127.0.0.1:8245; use :0 to
//	                 pick a free port — the bound address is printed as
//	                 "blud: listening on ADDR")
//	-workers n       compute pool size (0 = all cores)
//	-solver-parallel n  per-inference solver parallelism (default 1;
//	                 throughput comes from concurrent requests)
//	-queue n         work-queue depth; beyond it requests get 429 +
//	                 Retry-After (default 64)
//	-cache n         infer result-cache entries (default 1024, -1 off)
//	-sessions n      live observe-session bound; past it the LRU
//	                 session is evicted (default 256)
//	-window n        windowed-estimator capacity in sealed epochs
//	                 (default 64)
//	-timeout d       default per-request deadline (default 30s)
//	-max-timeout d   cap on client-supplied timeout_ms (default 2m)
//	-manifest file   write a JSON run manifest here on shutdown
//	-pprof addr      serve net/http/pprof on addr
//	-state dir       durable session state under this directory: every
//	                 accepted observe batch is WAL-logged before it
//	                 folds and the live sessions are snapshotted
//	                 periodically, so a restart (even kill -9) restores
//	                 the streaming state digest-identically and session
//	                 infers stay warm (DESIGN.md §15). Empty = memory-
//	                 only.
//	-snapshot-interval d  periodic snapshot cadence (default 30s;
//	                 requires -state)
//	-wal-sync d      WAL group-commit fsync interval; a crash loses at
//	                 most this window of acknowledged observes
//	                 (default 25ms; requires -state)
//
// Flag ranges are validated up front — a zero session bound, a
// non-positive window, or an unwritable -state directory is a clear
// startup error, not a latent panic.
//
// SIGTERM or SIGINT triggers a graceful drain: /healthz flips to 503
// "draining", the listener closes, every accepted request finishes, a
// final state snapshot is serialized (with -state), and the manifest
// is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blu/internal/obs"
	"blu/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blud:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blud", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8245", "listen address (use :0 for a free port)")
	workers := fs.Int("workers", 0, "compute pool size (0 = all cores)")
	solverPar := fs.Int("solver-parallel", 1, "per-inference solver parallelism")
	queue := fs.Int("queue", 64, "work-queue depth (full queue answers 429)")
	cache := fs.Int("cache", 1024, "infer result-cache entries (-1 disables)")
	sessions := fs.Int("sessions", 256, "live observe-session bound (LRU beyond it)")
	window := fs.Int("window", 64, "windowed-estimator capacity in sealed epochs")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client timeout_ms")
	manifest := fs.String("manifest", "", "write a JSON run manifest to this file on shutdown")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address")
	stateDir := fs.String("state", "", "durable session state directory (empty = memory-only)")
	snapInterval := fs.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (requires -state)")
	walSync := fs.Duration("wal-sync", 25*time.Millisecond, "WAL group-commit fsync interval (requires -state)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	// Range-check every bound before anything starts: a bad flag is a
	// one-line startup error naming the flag, never a latent panic or a
	// daemon that silently cannot hold a session.
	switch {
	case *workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 = all cores), got %d", *workers)
	case *solverPar < 0:
		return fmt.Errorf("-solver-parallel must be >= 0 (0 = all cores), got %d", *solverPar)
	case *queue < 1:
		return fmt.Errorf("-queue must be >= 1, got %d", *queue)
	case *cache < -1:
		return fmt.Errorf("-cache must be >= -1 (-1 disables), got %d", *cache)
	case *sessions < 1:
		return fmt.Errorf("-sessions must be >= 1, got %d", *sessions)
	case *window < 1:
		return fmt.Errorf("-window must be >= 1, got %d", *window)
	case *timeout <= 0:
		return fmt.Errorf("-timeout must be positive, got %v", *timeout)
	case *maxTimeout <= 0:
		return fmt.Errorf("-max-timeout must be positive, got %v", *maxTimeout)
	}
	if *stateDir != "" {
		if *snapInterval <= 0 {
			return fmt.Errorf("-snapshot-interval must be positive, got %v", *snapInterval)
		}
		if *walSync <= 0 {
			return fmt.Errorf("-wal-sync must be positive, got %v", *walSync)
		}
		if err := probeStateDir(*stateDir); err != nil {
			return err
		}
	}

	// The service is the metrics producer; recording is always on so
	// /metrics and the manifest mean something.
	obs.Enable()
	if *pprofAddr != "" {
		got, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "blud: pprof on %s\n", got)
	}

	s, recovered, err := serve.NewDurable(serve.Config{
		Workers:           *workers,
		SolverParallelism: *solverPar,
		QueueDepth:        *queue,
		CacheEntries:      *cache,
		MaxSessions:       *sessions,
		WindowEpochs:      *window,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		ManifestPath:      *manifest,
		StateDir:          *stateDir,
		SnapshotInterval:  *snapInterval,
		WALSyncInterval:   *walSync,
		Tool:              "blud",
		Args:              args,
	})
	if err != nil {
		return err
	}
	if *stateDir != "" {
		fmt.Fprintf(os.Stderr,
			"blud: recovered %d snapshot sessions + %d WAL records from %s (%d corrupt dropped, %d v1 artifacts migrated)\n",
			recovered.SnapshotRecords, recovered.WALReplayed, *stateDir, recovered.CorruptDropped, recovered.Migrated)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		return err
	}
	// Scripted consumers (ci.sh serve-smoke, bluload wrappers) parse
	// this exact line to learn the bound port.
	fmt.Printf("blud: listening on %s\n", bound)

	sigch := make(chan os.Signal, 1)
	signal.Notify(sigch, syscall.SIGTERM, os.Interrupt)
	sig := <-sigch
	signal.Stop(sigch)
	fmt.Fprintf(os.Stderr, "blud: %s, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *manifest != "" {
		fmt.Fprintf(os.Stderr, "blud: manifest written to %s\n", *manifest)
	}
	return nil
}

// probeStateDir proves the state directory is usable before the server
// exists: create it if missing and write-delete a probe file, so an
// unwritable path fails startup with a clear error instead of
// surfacing later as a failed snapshot mid-drain.
func probeStateDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("-state %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".blud-probe-*")
	if err != nil {
		return fmt.Errorf("-state %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}
