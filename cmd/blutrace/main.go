// Command blutrace generates, inspects, and combines channel/
// interference trace files (the Section 4.2 emulation methodology).
//
// Usage:
//
//	blutrace gen -o out.json [-ues 8] [-hts 12] [-subframes 30000] [-seed 1]
//	blutrace info trace.json
//	blutrace combine-ues -o big.json a.json b.json [c.json ...]
//	blutrace combine-ht -o dense.json base.json extra.json [...]
package main

import (
	"flag"
	"fmt"
	"os"

	"blu/internal/rng"
	"blu/internal/sim"
	"blu/internal/trace"
	"blu/internal/wifi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "blutrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: blutrace <gen|info|combine-ues|combine-ht> ...")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:])
	case "info":
		return infoCmd(args[1:])
	case "combine-ues":
		return combineCmd(args[1:], trace.CombineUEs)
	case "combine-ht":
		return combineCmd(args[1:], func(ts ...*trace.Trace) (*trace.Trace, error) {
			if len(ts) < 2 {
				return nil, fmt.Errorf("combine-ht needs a base and at least one extra trace")
			}
			return trace.CombineInterference(ts[0], ts[1:]...)
		})
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "output file")
	ues := fs.Int("ues", 8, "number of UEs")
	hts := fs.Int("hts", 12, "number of WiFi stations")
	subframes := fs.Int("subframes", 30000, "trace length in subframes")
	seed := fs.Uint64("seed", 1, "random seed")
	duty := fs.Float64("duty", 0.35, "mean hidden-terminal airtime target")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := rng.New(*seed)
	stations := make([]wifi.Station, *hts)
	for k := range stations {
		target := *duty * (0.6 + 0.8*r.Float64())
		if target > 0.9 {
			target = 0.9
		}
		stations[k].Traffic = wifi.DutyCycle{Target: target}
		stations[k].Rate = wifi.RateForSNR(12 + 14*r.Float64())
	}
	cell, err := sim.New(sim.Config{
		Scenario:  sim.NewTestbedScenario(*ues, *hts, *seed),
		Stations:  stations,
		Subframes: *subframes,
		Seed:      r.Uint64(),
	})
	if err != nil {
		return err
	}
	tr := cell.Export(fmt.Sprintf("gen ues=%d hts=%d seed=%d", *ues, *hts, *seed))
	if err := tr.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d UEs, %d stations, %d subframes, ground truth %v\n",
		*out, tr.NumUE, len(tr.Interference), tr.Subframes, tr.GroundTruth())
	return nil
}

func infoCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: blutrace info <trace.json>")
	}
	tr, err := trace.Load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("label:      %s\n", tr.Label)
	fmt.Printf("ues:        %d\n", tr.NumUE)
	fmt.Printf("subframes:  %d (%.1f s)\n", tr.Subframes, float64(tr.Subframes)/1000)
	fmt.Printf("stations:   %d\n", len(tr.Interference))
	for k, it := range tr.Interference {
		fmt.Printf("  station %2d: airtime=%.2f hidden=%v edges=%v\n",
			k, it.Airtime, it.HiddenFromENB, it.Edges)
	}
	fmt.Printf("ground truth: %v\n", tr.GroundTruth())
	return nil
}

func combineCmd(args []string, combine func(...*trace.Trace) (*trace.Trace, error)) error {
	fs := flag.NewFlagSet("combine", flag.ContinueOnError)
	out := fs.String("o", "combined.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("need at least two input traces")
	}
	var traces []*trace.Trace
	for _, path := range fs.Args() {
		tr, err := trace.Load(path)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	combined, err := combine(traces...)
	if err != nil {
		return err
	}
	if err := combined.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d UEs, %d stations, %d subframes\n",
		*out, combined.NumUE, len(combined.Interference), combined.Subframes)
	return nil
}
