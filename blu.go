// Package blu is an open reimplementation of BLU ("Blue-printing
// Interference for Robust LTE Access in Unlicensed Spectrum",
// CoNEXT 2017): a speculative uplink scheduler for LTE in unlicensed
// spectrum that over-schedules clients on the same resource blocks to
// compensate for hidden-terminal blocking, driven by a blueprint of the
// interference topology inferred from only pair-wise client access
// measurements.
//
// The package is a facade over the implementation packages:
//
//   - Topology, HiddenTerminal, ClientSet, Measurements and Infer are
//     the core blueprint model and the deterministic topology-inference
//     algorithm (paper Section 3.4).
//   - NewCalculator derives higher-order joint access distributions
//     from a blueprint by recursive topology conditioning (Section 3.6).
//   - NewPF, NewAccessAware and NewSpeculative are the three uplink
//     schedulers the paper compares (Eqns 1, 5 and 3–4).
//   - BuildMeasurementPlan is the Algorithm-1 measurement scheduler and
//     NewEstimator the access-distribution estimator (Section 3.3).
//   - NewCell / NewCellFromTrace simulate an unlicensed-band LTE uplink
//     cell with WiFi hidden terminals (the SDR-testbed substitute), and
//     NewSystem runs the full measurement→blueprint→speculative loop
//     (Fig 9).
//
// See examples/quickstart for an end-to-end tour and DESIGN.md for the
// system inventory.
package blu

import (
	"context"

	"blu/internal/access"
	"blu/internal/blueprint"
	"blu/internal/core"
	"blu/internal/faults"
	"blu/internal/joint"
	"blu/internal/lte"
	"blu/internal/netsim"
	"blu/internal/rng"
	"blu/internal/sched"
	"blu/internal/sim"
	"blu/internal/topology"
	"blu/internal/trace"
)

// Core blueprint model (paper Section 3.4).
type (
	// Topology is the interference blueprint (h, Q, Z): hidden
	// terminals, their access probabilities, and their client edges.
	Topology = blueprint.Topology
	// HiddenTerminal is one interference source in a Topology.
	HiddenTerminal = blueprint.HiddenTerminal
	// ClientSet is a bitmask set of client (UE) indices.
	ClientSet = blueprint.ClientSet
	// Measurements holds individual p(i) and pair-wise p(i,j) client
	// access probabilities — the only input inference needs.
	Measurements = blueprint.Measurements
	// InferOptions tunes topology inference.
	InferOptions = blueprint.InferOptions
	// InferResult is the inference outcome.
	InferResult = blueprint.InferResult
)

// NewClientSet returns the set of the given client indices.
func NewClientSet(clients ...int) ClientSet { return blueprint.NewClientSet(clients...) }

// NewMeasurements returns zeroed measurements for n clients.
func NewMeasurements(n int) *Measurements { return blueprint.NewMeasurements(n) }

// Infer blue-prints the hidden-terminal interference topology from
// pair-wise client access distributions (Section 3.4).
func Infer(m *Measurements, opts InferOptions) (*InferResult, error) {
	return blueprint.Infer(m, opts)
}

// InferContext is Infer with caller-controlled cancellation: a fired
// context aborts inference promptly with an error matchable against
// blueprint.ErrAborted; a background context is exactly Infer.
func InferContext(ctx context.Context, m *Measurements, opts InferOptions) (*InferResult, error) {
	return blueprint.InferContext(ctx, m, opts)
}

// InferenceAccuracy scores an inferred topology against ground truth
// with the paper's stringent exact-edge-set metric (Section 4.2.2).
func InferenceAccuracy(truth, inferred *Topology) float64 {
	return blueprint.Accuracy(truth, inferred)
}

// Joint access distributions (paper Section 3.6).
type (
	// Distribution yields joint client access probabilities.
	Distribution = joint.Distribution
	// Calculator computes them from a blueprint by recursive topology
	// conditioning.
	Calculator = joint.Calculator
	// Empirical estimates them from observed access outcomes.
	Empirical = joint.Empirical
	// Independent multiplies marginals (the access-aware baseline's
	// implicit assumption).
	Independent = joint.Independent
)

// NewCalculator returns the conditional joint-distribution calculator
// over an inferred blueprint.
func NewCalculator(topo *Topology) *Calculator { return joint.NewCalculator(topo) }

// NewEmpirical returns an empty empirical joint distribution over n
// clients.
func NewEmpirical(n int) *Empirical { return joint.NewEmpirical(n) }

// Schedulers (paper Section 3.2).
type (
	// SchedEnv describes a scheduling problem instance.
	SchedEnv = sched.Env
	// Scheduler is a per-subframe uplink scheduler.
	Scheduler = sched.Scheduler
	// PF is the native proportional-fair scheduler (Eqn 1).
	PF = sched.PF
	// AccessAware is the marginal-weighted PF baseline (Eqn 5).
	AccessAware = sched.AccessAware
	// Speculative is BLU's over-scheduling scheduler (Eqns 3–4).
	Speculative = sched.Speculative
)

// NewPF returns the native proportional-fair scheduler.
func NewPF(env SchedEnv) (*PF, error) { return sched.NewPF(env) }

// NewAccessAware returns the Eqn-5 access-aware baseline.
func NewAccessAware(env SchedEnv, dist Distribution) (*AccessAware, error) {
	return sched.NewAccessAware(env, dist)
}

// NewSpeculative returns BLU's speculative scheduler.
func NewSpeculative(env SchedEnv, dist Distribution) (*Speculative, error) {
	return sched.NewSpeculative(env, dist)
}

// Measurement phase (paper Section 3.3).
type (
	// MeasurementPlan schedules the pair-wise measurement subframes.
	MeasurementPlan = access.Plan
	// MeasurementPlanOptions parameterizes Algorithm 1.
	MeasurementPlanOptions = access.PlanOptions
	// Estimator turns per-subframe access observations into
	// Measurements.
	Estimator = access.Estimator
)

// BuildMeasurementPlan runs Algorithm 1.
func BuildMeasurementPlan(opts MeasurementPlanOptions) (*MeasurementPlan, error) {
	return access.BuildPlan(opts)
}

// NewEstimator returns an empty access-distribution estimator for n
// clients.
func NewEstimator(n int) *Estimator { return access.NewEstimator(n) }

// MeasurementLowerBound returns F_min = ⌈C(N,2)/C(K,2)·T⌉, the paper's
// bound on pair-wise measurement subframes.
func MeasurementLowerBound(n, k, t int) int { return access.FMin(n, k, t) }

// Simulation substrate (the WARP SDR testbed substitute).
type (
	// Scenario is a physical deployment of eNB, UEs and WiFi stations.
	Scenario = topology.Scenario
	// ScenarioConfig parameterizes random scenario generation.
	ScenarioConfig = topology.Config
	// Cell is a simulated unlicensed-band LTE uplink cell.
	Cell = sim.Cell
	// CellConfig parameterizes cell simulation.
	CellConfig = sim.Config
	// Metrics aggregates one scheduler run.
	Metrics = sim.Metrics
	// Trace is a recorded channel/interference trace (Section 4.2).
	Trace = trace.Trace
	// ReplayConfig parameterizes trace replay.
	ReplayConfig = sim.ReplayConfig
	// Schedule is one subframe's uplink allocation.
	Schedule = lte.Schedule
	// RBResult is the eNB's receive result for one RB unit.
	RBResult = lte.RBResult
	// Outcome classifies a grant's fate (Section 3.3 rules).
	Outcome = lte.Outcome
)

// Grant outcome classifications re-exported from the LTE substrate.
const (
	OutcomeIdle      = lte.OutcomeIdle
	OutcomeBlocked   = lte.OutcomeBlocked
	OutcomeCollision = lte.OutcomeCollision
	OutcomeFading    = lte.OutcomeFading
	OutcomeSuccess   = lte.OutcomeSuccess
)

// NewScenario generates a random enterprise deployment.
func NewScenario(cfg ScenarioConfig, seed uint64) (*Scenario, error) {
	return topology.NewScenario(cfg, rng.New(seed))
}

// NewTestbedScenario builds the paper's Fig-1-style testbed deployment.
func NewTestbedScenario(nUE, nHT int, seed uint64) *Scenario {
	return sim.NewTestbedScenario(nUE, nHT, seed)
}

// NewCell builds a simulated cell.
func NewCell(cfg CellConfig) (*Cell, error) { return sim.New(cfg) }

// NewCellFromTrace replays a recorded or combined trace.
func NewCellFromTrace(tr *Trace, rc ReplayConfig) (*Cell, error) {
	return sim.NewFromTrace(tr, rc)
}

// RunScheduler drives a scheduler over subframes [from, to) of a cell.
func RunScheduler(c *Cell, s Scheduler, from, to int) *Metrics {
	return sim.Run(c, s, from, to, nil)
}

// EstimateMeasurements computes the empirical individual and pair-wise
// access distributions from a simulated cell's full access trace — the
// idealized measurement a maximally long Section-3.3 phase converges
// to. Production estimation from scheduled observations is Estimator.
func EstimateMeasurements(c *Cell) *Measurements { return netsim.MeasureFromMasks(c) }

// LoadTrace reads a trace file.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// CombineTraceUEs merges traces into a larger emulated UE topology.
func CombineTraceUEs(traces ...*Trace) (*Trace, error) { return trace.CombineUEs(traces...) }

// CombineTraceInterference overlays extra interference onto a base
// trace's UE set-up.
func CombineTraceInterference(base *Trace, extras ...*Trace) (*Trace, error) {
	return trace.CombineInterference(base, extras...)
}

// Full BLU controller (paper Fig 9).
type (
	// System alternates measurement and speculative phases on a cell.
	System = core.System
	// SystemConfig tunes the controller.
	SystemConfig = core.Config
	// Report is a controller run's outcome.
	Report = core.Report
	// Phase summarizes one controller phase.
	Phase = core.Phase
)

// NewSystem builds the BLU controller for a cell.
func NewSystem(cfg SystemConfig, cell *Cell) (*System, error) {
	return core.NewSystem(cfg, cell)
}

// Fault injection and graceful degradation (robustness layer,
// DESIGN.md §10).
type (
	// FaultScenario is a declarative, seeded fault plan attachable to a
	// cell via CellConfig.Faults: hidden-terminal churn, measurement
	// loss/corruption, bursty interference, and inference stalls.
	FaultScenario = faults.Scenario
	// FaultChurnConfig parameterizes hidden-terminal churn.
	FaultChurnConfig = faults.ChurnConfig
	// FaultBurstConfig parameterizes bursty interference.
	FaultBurstConfig = faults.BurstConfig
	// LadderLevel is the controller's degradation rung for a cycle.
	LadderLevel = core.LadderLevel
)

// Degradation-ladder rungs, best first.
const (
	LadderSpeculative = core.LadderSpeculative
	LadderAccessAware = core.LadderAccessAware
	LadderPF          = core.LadderPF
)

// FaultScenarios lists the built-in fault scenario names.
func FaultScenarios() []string { return faults.Names() }

// FaultPreset returns a built-in fault scenario sized for a horizon.
func FaultPreset(name string, horizon int) (FaultScenario, error) {
	return faults.Preset(name, horizon)
}
